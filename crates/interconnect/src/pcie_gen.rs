//! PCIe generation presets: raw rate and encoding per the PCI-SIG specs.

/// A PCIe specification generation.
///
/// Each generation fixes the per-lane raw signalling rate and the line
/// encoding; effective bandwidth is `lanes × raw × efficiency`. The
/// paper's Table II baseline is [`PcieGen::Gen2`] ×4.
///
/// ```
/// use accesys_interconnect::{PcieGen, PcieLinkConfig};
///
/// // Gen3 ×16 ≈ 15.75 GB/s effective.
/// let link = PcieLinkConfig::gen(PcieGen::Gen3, 16);
/// assert!((link.bandwidth_gbps() - 15.75).abs() < 0.01);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum PcieGen {
    /// PCIe 1.x: 2.5 GT/s, 8b/10b.
    Gen1,
    /// PCIe 2.x: 5 GT/s, 8b/10b (Table II baseline).
    Gen2,
    /// PCIe 3.x: 8 GT/s, 128b/130b.
    Gen3,
    /// PCIe 4.0: 16 GT/s, 128b/130b.
    Gen4,
    /// PCIe 5.0: 32 GT/s, 128b/130b.
    Gen5,
    /// PCIe 6.0: 64 GT/s, PAM4 + FLIT mode (242/256 FEC framing).
    Gen6,
}

impl PcieGen {
    /// All generations, oldest first.
    pub const ALL: [PcieGen; 6] = [
        PcieGen::Gen1,
        PcieGen::Gen2,
        PcieGen::Gen3,
        PcieGen::Gen4,
        PcieGen::Gen5,
        PcieGen::Gen6,
    ];

    /// Raw per-lane signalling rate in GT/s.
    pub fn raw_gt_s(self) -> f64 {
        match self {
            PcieGen::Gen1 => 2.5,
            PcieGen::Gen2 => 5.0,
            PcieGen::Gen3 => 8.0,
            PcieGen::Gen4 => 16.0,
            PcieGen::Gen5 => 32.0,
            PcieGen::Gen6 => 64.0,
        }
    }

    /// Line-encoding efficiency (payload bits / wire bits).
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            PcieGen::Gen1 | PcieGen::Gen2 => 0.8, // 8b/10b
            PcieGen::Gen3 | PcieGen::Gen4 | PcieGen::Gen5 => 128.0 / 130.0,
            PcieGen::Gen6 => 242.0 / 256.0, // FLIT + FEC
        }
    }

    /// Effective per-lane bandwidth in GB/s.
    pub fn per_lane_gbps(self) -> f64 {
        self.raw_gt_s() * self.encoding_efficiency() / 8.0
    }

    /// Effective bandwidth of a `lanes`-wide link in GB/s.
    pub fn bandwidth_gbps(self, lanes: u32) -> f64 {
        self.per_lane_gbps() * f64::from(lanes)
    }
}

impl std::fmt::Display for PcieGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PcieGen::Gen1 => "PCIe 1.0",
            PcieGen::Gen2 => "PCIe 2.0",
            PcieGen::Gen3 => "PCIe 3.0",
            PcieGen::Gen4 => "PCIe 4.0",
            PcieGen::Gen5 => "PCIe 5.0",
            PcieGen::Gen6 => "PCIe 6.0",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_increase_and_double_from_gen3_onward() {
        for pair in PcieGen::ALL.windows(2) {
            assert!(pair[1].raw_gt_s() > pair[0].raw_gt_s());
        }
        // Gen2 → Gen3 switched encodings (5 → 8 GT/s); every jump after
        // that doubles the raw rate.
        for pair in PcieGen::ALL[2..].windows(2) {
            assert_eq!(pair[1].raw_gt_s(), 2.0 * pair[0].raw_gt_s());
        }
    }

    #[test]
    fn effective_bandwidths_match_the_spec_sheet() {
        // Well-known ×16 numbers: Gen1 4 GB/s, Gen3 15.75, Gen4 31.5.
        assert!((PcieGen::Gen1.bandwidth_gbps(16) - 4.0).abs() < 0.01);
        assert!((PcieGen::Gen3.bandwidth_gbps(16) - 15.75).abs() < 0.01);
        assert!((PcieGen::Gen4.bandwidth_gbps(16) - 31.5).abs() < 0.01);
        assert!((PcieGen::Gen6.bandwidth_gbps(16) - 121.0).abs() < 1.0);
    }

    #[test]
    fn table_ii_baseline_is_gen2_x4() {
        // 4 lanes × 5 GT/s × 0.8 / 8 = 2 GB/s effective — the paper's
        // "PCIe Link Version 2.0, 4 Gb/s, 4 Lanes" row.
        assert!((PcieGen::Gen2.bandwidth_gbps(4) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn encoding_overhead_shrinks_over_generations() {
        assert!(PcieGen::Gen1.encoding_efficiency() < PcieGen::Gen3.encoding_efficiency());
        assert!(PcieGen::Gen6.encoding_efficiency() > 0.9);
    }

    #[test]
    fn display_names_are_versioned() {
        assert_eq!(PcieGen::Gen5.to_string(), "PCIe 5.0");
    }
}
