//! Address ranges for routing.

/// A half-open physical address range `[base, base + size)`.
///
/// ```
/// use accesys_interconnect::AddrRange;
///
/// let r = AddrRange::new(0x1000, 0x1000);
/// assert!(r.contains(0x1000));
/// assert!(r.contains(0x1fff));
/// assert!(!r.contains(0x2000));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct AddrRange {
    /// First address in the range.
    pub base: u64,
    /// Length in bytes.
    pub size: u64,
}

impl AddrRange {
    /// Create a range; `size` must be non-zero.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(size > 0, "empty address range");
        assert!(base.checked_add(size).is_some(), "address range overflow");
        AddrRange { base, size }
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.size
    }

    /// One past the last address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether two ranges share any address.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

impl std::fmt::Display for AddrRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.base, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let r = AddrRange::new(100, 50);
        assert!(!r.contains(99));
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
    }

    #[test]
    fn overlap_detection() {
        let a = AddrRange::new(0, 100);
        let b = AddrRange::new(50, 100);
        let c = AddrRange::new(100, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "empty address range")]
    fn zero_size_panics() {
        AddrRange::new(0, 0);
    }
}
