//! # accesys-interconnect
//!
//! The interconnect fabric of the Gem5-AcceSys reproduction: the host
//! memory bus ([`Xbar`]) and the full PCIe stack the paper adds to gem5 —
//! unidirectional credited links ([`PcieLink`]), a store-and-forward
//! [`PcieSwitch`] (50 ns), the [`RootComplex`] (150 ns) bridging PCIe to
//! the memory bus, and the device-side [`PcieEndpoint`] with a bounded
//! non-posted tag pool.
//!
//! Key timing behaviours, all emergent rather than fitted:
//!
//! * link bandwidth = lanes × lane rate × encoding efficiency,
//! * per-TLP header bytes penalise small payloads,
//! * per-hop byte credits and store-and-forward serialization penalise
//!   very large payloads (the Fig. 4 convexity),
//! * a bounded tag pool limits outstanding reads (BDP starvation).

mod addr;
mod ep;
mod flit;
mod link;
mod pcie_gen;
mod rc;
mod switch;
mod xbar;

pub use addr::AddrRange;
pub use ep::{PcieEndpoint, PcieEndpointConfig};
pub use flit::{CreditUnit, FlitLink, FlitLinkConfig};
pub use link::{PcieLink, PcieLinkConfig};
pub use pcie_gen::PcieGen;
pub use rc::{RootComplex, RootComplexConfig};
pub use switch::{aggregate_ranges, PcieSwitch, PcieSwitchConfig, SwitchPort};
pub use xbar::{Xbar, XbarConfig};
