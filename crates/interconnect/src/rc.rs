//! PCIe Root Complex: the CPU-side bridge between PCIe and the MemBus.

use crate::AddrRange;
use accesys_sim::{units, Ctx, Module, ModuleId, Msg, Packet, Stats, Tick};

/// Configuration of a [`RootComplex`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RootComplexConfig {
    /// Bridge latency per TLP in nanoseconds (paper Table II: 150 ns).
    pub latency_ns: f64,
    /// Pipelined per-TLP processing occupancy in nanoseconds.
    pub tlp_proc_ns: f64,
    /// Maximum payload size of a TLP in bytes; requests larger than this
    /// are rejected at the issuing DMA engine.
    pub max_payload_bytes: u32,
    /// Unit of the ingress credits returned to the delivering link
    /// (bytes for PCIe links, flits behind a [`crate::FlitLink`]).
    pub credit_unit: crate::CreditUnit,
}

impl Default for RootComplexConfig {
    fn default() -> Self {
        RootComplexConfig {
            latency_ns: 150.0,
            tlp_proc_ns: 4.0,
            max_payload_bytes: 4096,
            credit_unit: crate::CreditUnit::PcieBytes,
        }
    }
}

impl RootComplexConfig {
    /// A CXL.mem-style host bridge: no transaction-layer hierarchy below
    /// it, so per-hop latency drops to tens of nanoseconds and credits
    /// are counted in flits.
    pub fn cxl_host_bridge() -> Self {
        RootComplexConfig {
            latency_ns: 25.0,
            tlp_proc_ns: 2.0,
            credit_unit: crate::CreditUnit::Flits {
                payload_per_flit: 64,
            },
            ..Self::default()
        }
    }
}

/// The PCIe Root Complex.
///
/// * Device-originated requests (DMA reads/writes arriving over PCIe) are
///   forwarded to the host target — the SMMU when translation is enabled,
///   otherwise the MemBus.
/// * Host-originated requests whose address falls in a device BAR are
///   forwarded down the PCIe hierarchy (MMIO doorbells, NUMA accesses to
///   device memory).
/// * Responses follow the packet route stack; those whose next hop lives
///   on the PCIe side leave through the downstream link as completion
///   TLPs.
///
/// The RC consumes PCIe ingress credits: it returns them once a packet is
/// accepted for processing, modelling its ingress buffer draining into
/// the host fabric.
pub struct RootComplex {
    name: String,
    cfg: RootComplexConfig,
    /// Where device-originated requests go (SMMU or MemBus).
    host_target: ModuleId,
    /// Downstream egress link (toward the switch).
    down_link: ModuleId,
    /// Device BAR ranges (host-originated requests to these go down).
    device_ranges: Vec<AddrRange>,
    /// Modules on the PCIe side; responses popped to these leave via
    /// `down_link`.
    pcie_modules: Vec<ModuleId>,
    /// Sideband ranges (MSI window): device-originated requests to these
    /// bypass the SMMU/cache path and go straight to `sideband_target`.
    sideband_ranges: Vec<AddrRange>,
    sideband_target: ModuleId,
    proc_free: Tick,
    // stats
    up_requests: u64,
    down_requests: u64,
    completions_down: u64,
    responses_up: u64,
}

impl RootComplex {
    /// Create a root complex bridging `down_link` (PCIe) and
    /// `host_target` (SMMU/MemBus).
    pub fn new(
        name: &str,
        cfg: RootComplexConfig,
        host_target: ModuleId,
        down_link: ModuleId,
    ) -> Self {
        RootComplex {
            name: name.to_string(),
            cfg,
            host_target,
            down_link,
            device_ranges: Vec::new(),
            pcie_modules: Vec::new(),
            sideband_ranges: Vec::new(),
            sideband_target: ModuleId::INVALID,
            proc_free: 0,
            up_requests: 0,
            down_requests: 0,
            completions_down: 0,
            responses_up: 0,
        }
    }

    /// Declare a device BAR range (routes host requests downstream).
    pub fn add_device_range(&mut self, range: AddrRange) {
        self.device_ranges.push(range);
    }

    /// Declare a module on the PCIe side (switch, endpoints) so responses
    /// addressed to it are sent through the downstream link.
    pub fn add_pcie_module(&mut self, id: ModuleId) {
        self.pcie_modules.push(id);
    }

    /// Builder-style [`RootComplex::add_device_range`].
    pub fn with_device_range(mut self, range: AddrRange) -> Self {
        self.add_device_range(range);
        self
    }

    /// Builder-style [`RootComplex::add_pcie_module`].
    pub fn with_pcie_module(mut self, id: ModuleId) -> Self {
        self.add_pcie_module(id);
        self
    }

    /// Route device-originated requests in `range` (e.g. the MSI window)
    /// directly to `target`, bypassing the SMMU/cache path.
    pub fn add_sideband(&mut self, range: AddrRange, target: ModuleId) {
        self.sideband_ranges.push(range);
        self.sideband_target = target;
    }

    /// Builder-style [`RootComplex::add_sideband`].
    pub fn with_sideband(mut self, range: AddrRange, target: ModuleId) -> Self {
        self.add_sideband(range, target);
        self
    }

    fn is_sideband(&self, addr: u64) -> bool {
        self.sideband_target.is_valid() && self.sideband_ranges.iter().any(|r| r.contains(addr))
    }

    /// The configuration this root complex was built with.
    pub fn config(&self) -> RootComplexConfig {
        self.cfg
    }

    fn is_device_addr(&self, addr: u64) -> bool {
        self.device_ranges.iter().any(|r| r.contains(addr))
    }

    fn process_at(&mut self, now: Tick) -> Tick {
        let start = self.proc_free.max(now);
        self.proc_free = start + units::ns(self.cfg.tlp_proc_ns);
        start + units::ns(self.cfg.latency_ns)
    }

    /// Return the ingress credit for a packet that arrived over the link.
    fn drain_credit(&self, pkt: &mut Packet, at: Tick, ctx: &mut Ctx) {
        if pkt.ingress_link.is_valid() {
            let class = match pkt.cmd {
                accesys_sim::MemCmd::WriteReq => accesys_sim::CreditClass::Posted,
                accesys_sim::MemCmd::ReadReq | accesys_sim::MemCmd::SnoopInv => {
                    accesys_sim::CreditClass::NonPosted
                }
                _ => accesys_sim::CreditClass::Completion,
            };
            let bytes = self.cfg.credit_unit.credit_for(pkt);
            ctx.send_at(pkt.ingress_link, at, Msg::Credit { class, bytes });
            pkt.ingress_link = ModuleId::INVALID;
        }
    }
}

impl Module for RootComplex {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        let mut pkt = match msg {
            Msg::Packet(p) => p,
            _ => return,
        };
        let out_at = self.process_at(ctx.now());
        if pkt.cmd.is_request() {
            if self.is_device_addr(pkt.addr) {
                // Host-originated, heading down the hierarchy.
                self.down_requests += 1;
                pkt.route.push(ctx.self_id());
                ctx.send_at(self.down_link, out_at, Msg::Packet(pkt));
            } else if self.is_sideband(pkt.addr) {
                // MSI or other sideband write: straight onto the bus.
                self.up_requests += 1;
                self.drain_credit(&mut pkt, out_at, ctx);
                pkt.route.push(ctx.self_id());
                ctx.send_at(self.sideband_target, out_at, Msg::Packet(pkt));
            } else {
                // Device-originated DMA heading into host memory.
                self.up_requests += 1;
                self.drain_credit(&mut pkt, out_at, ctx);
                pkt.route.push(ctx.self_id());
                ctx.send_at(self.host_target, out_at, Msg::Packet(pkt));
            }
        } else {
            let next = pkt
                .route
                .pop()
                .expect("response reached root complex with empty route");
            if self.pcie_modules.contains(&next) {
                // Completion heading down to the device.
                self.completions_down += 1;
                ctx.send_at(self.down_link, out_at, Msg::Packet(pkt));
            } else {
                // Completion for a host-originated MMIO/NUMA access.
                self.responses_up += 1;
                self.drain_credit(&mut pkt, out_at, ctx);
                ctx.send_at(next, out_at, Msg::Packet(pkt));
            }
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("up_requests", self.up_requests as f64);
        out.add("down_requests", self.down_requests as f64);
        out.add("completions_down", self.completions_down as f64);
        out.add("responses_up", self.responses_up as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_sim::{Kernel, MemCmd};

    struct Term {
        name: &'static str,
        got: Vec<(Tick, MemCmd)>,
    }
    impl Module for Term {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(p) = msg {
                self.got.push((ctx.now(), p.cmd));
            }
        }
    }

    const BAR: AddrRange = AddrRange {
        base: 0x1_0000_0000,
        size: 0x1000_0000,
    };

    #[test]
    fn dma_requests_bridge_to_host_after_latency() {
        let mut k = Kernel::new();
        let host = k.add_module(Box::new(Term {
            name: "host",
            got: vec![],
        }));
        let down = k.add_module(Box::new(Term {
            name: "down",
            got: vec![],
        }));
        let rc = k.add_module(Box::new(
            RootComplex::new("rc", RootComplexConfig::default(), host, down).with_device_range(BAR),
        ));
        let p = Packet::request(0, MemCmd::ReadReq, 0x8000, 256, 0);
        k.schedule(0, rc, Msg::packet(p));
        k.run_until_idle().unwrap();
        let got = &k.module::<Term>(host).unwrap().got;
        assert_eq!(got, &vec![(units::ns(150.0), MemCmd::ReadReq)]);
        assert!(k.module::<Term>(down).unwrap().got.is_empty());
    }

    #[test]
    fn mmio_requests_head_downstream() {
        let mut k = Kernel::new();
        let host = k.add_module(Box::new(Term {
            name: "host",
            got: vec![],
        }));
        let down = k.add_module(Box::new(Term {
            name: "down",
            got: vec![],
        }));
        let rc = k.add_module(Box::new(
            RootComplex::new("rc", RootComplexConfig::default(), host, down).with_device_range(BAR),
        ));
        let p = Packet::request(0, MemCmd::WriteReq, BAR.base + 0x10, 8, 0);
        k.schedule(0, rc, Msg::packet(p));
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Term>(down).unwrap().got.len(), 1);
        assert!(k.module::<Term>(host).unwrap().got.is_empty());
    }

    #[test]
    fn responses_split_by_destination_side() {
        let mut k = Kernel::new();
        let host = k.add_module(Box::new(Term {
            name: "host",
            got: vec![],
        }));
        let down = k.add_module(Box::new(Term {
            name: "down",
            got: vec![],
        }));
        let sw = k.add_module(Box::new(Term {
            name: "sw",
            got: vec![],
        }));
        let rc = k.add_module(Box::new(
            RootComplex::new("rc", RootComplexConfig::default(), host, down)
                .with_device_range(BAR)
                .with_pcie_module(sw),
        ));
        // Completion for the device (next hop = switch): exits down_link.
        let mut cpl = Packet::request(0, MemCmd::ReadReq, 0x1000, 64, 0).to_response();
        cpl.route.push(sw);
        k.schedule(0, rc, Msg::packet(cpl));
        // Completion for a host module.
        let mut cpl2 = Packet::request(1, MemCmd::ReadReq, BAR.base, 8, 0).to_response();
        cpl2.route.push(host);
        k.schedule(0, rc, Msg::packet(cpl2));
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Term>(down).unwrap().got.len(), 1);
        assert_eq!(k.module::<Term>(host).unwrap().got.len(), 1);
    }

    #[test]
    fn tlp_rate_limits_pipeline() {
        let mut k = Kernel::new();
        let host = k.add_module(Box::new(Term {
            name: "host",
            got: vec![],
        }));
        let down = k.add_module(Box::new(Term {
            name: "down",
            got: vec![],
        }));
        let cfg = RootComplexConfig {
            latency_ns: 150.0,
            tlp_proc_ns: 10.0,
            ..RootComplexConfig::default()
        };
        let rc = k.add_module(Box::new(RootComplex::new("rc", cfg, host, down)));
        for i in 0..3 {
            let p = Packet::request(i, MemCmd::ReadReq, 0x100, 64, 0);
            k.schedule(0, rc, Msg::packet(p));
        }
        k.run_until_idle().unwrap();
        let times: Vec<Tick> = k
            .module::<Term>(host)
            .unwrap()
            .got
            .iter()
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(
            times,
            vec![units::ns(150.0), units::ns(160.0), units::ns(170.0)]
        );
    }
}
