//! Device-side PCIe endpoint port with a bounded non-posted tag pool.

use crate::AddrRange;
use accesys_sim::{
    units, CreditClass, Ctx, MemCmd, Module, ModuleId, Msg, Packet, PacketBox, Stats,
};
use std::collections::VecDeque;

/// Configuration of a [`PcieEndpoint`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PcieEndpointConfig {
    /// Maximum outstanding non-posted (read) requests.
    pub tags: u32,
    /// Per-TLP processing latency in nanoseconds.
    pub proc_ns: f64,
    /// Unit of the ingress credits returned to the delivering link
    /// (bytes for PCIe links, flits behind a [`crate::FlitLink`]).
    pub credit_unit: crate::CreditUnit,
}

impl Default for PcieEndpointConfig {
    fn default() -> Self {
        PcieEndpointConfig {
            tags: 128,
            proc_ns: 8.0,
            credit_unit: crate::CreditUnit::PcieBytes,
        }
    }
}

impl PcieEndpointConfig {
    /// A CXL.mem-style device port: flit-unit credits, same tag pool.
    pub fn cxl() -> Self {
        PcieEndpointConfig {
            credit_unit: crate::CreditUnit::Flits {
                payload_per_flit: 64,
            },
            ..Self::default()
        }
    }
}

/// The accelerator wrapper's PCIe port.
///
/// Outbound (device → host): takes requests from the DMA engine or the
/// controller, holds reads until a non-posted tag is free, and sends them
/// up the link. Inbound (host → device): consumes completion TLPs (freeing
/// tags and ingress credits) and delivers them to the internal requester
/// via the route stack; MMIO requests are forwarded to the configured
/// target (the accelerator controller).
pub struct PcieEndpoint {
    name: String,
    cfg: PcieEndpointConfig,
    up_link: ModuleId,
    mmio_target: ModuleId,
    mmio_range: AddrRange,
    /// Additional inward routes (e.g. device-memory range → DevMem
    /// controller) for host-originated NUMA accesses.
    inward_routes: Vec<(AddrRange, ModuleId)>,
    outstanding_np: u32,
    tx_queue: VecDeque<PacketBox>,
    // stats
    reads_sent: u64,
    writes_sent: u64,
    completions: u64,
    mmio_requests: u64,
    tag_stalls: u64,
}

impl PcieEndpoint {
    /// Create an endpoint sending upstream on `up_link` and delivering
    /// MMIO requests for `mmio_range` to `mmio_target`.
    pub fn new(
        name: &str,
        cfg: PcieEndpointConfig,
        up_link: ModuleId,
        mmio_target: ModuleId,
        mmio_range: AddrRange,
    ) -> Self {
        assert!(cfg.tags > 0, "endpoint needs at least one tag");
        PcieEndpoint {
            name: name.to_string(),
            cfg,
            up_link,
            mmio_target,
            mmio_range,
            inward_routes: Vec::new(),
            outstanding_np: 0,
            tx_queue: VecDeque::new(),
            reads_sent: 0,
            writes_sent: 0,
            completions: 0,
            mmio_requests: 0,
            tag_stalls: 0,
        }
    }

    /// The configuration this endpoint was built with.
    pub fn config(&self) -> PcieEndpointConfig {
        self.cfg
    }

    /// Route host-originated requests for `range` to `target` (e.g. the
    /// DevMem controller for NUMA accesses to device-side memory).
    pub fn add_inward_route(&mut self, range: AddrRange, target: ModuleId) {
        self.inward_routes.push((range, target));
    }

    /// Builder-style [`PcieEndpoint::add_inward_route`].
    pub fn with_inward_route(mut self, range: AddrRange, target: ModuleId) -> Self {
        self.add_inward_route(range, target);
        self
    }

    fn inward_target(&self, addr: u64) -> ModuleId {
        for (range, target) in &self.inward_routes {
            if range.contains(addr) {
                return *target;
            }
        }
        self.mmio_target
    }

    fn drain_credit(&self, pkt: &mut Packet, ctx: &mut Ctx) {
        if pkt.ingress_link.is_valid() {
            let class = match pkt.cmd {
                MemCmd::WriteReq => CreditClass::Posted,
                MemCmd::ReadReq | MemCmd::SnoopInv => CreditClass::NonPosted,
                _ => CreditClass::Completion,
            };
            let bytes = self.cfg.credit_unit.credit_for(pkt);
            ctx.send(pkt.ingress_link, 0, Msg::Credit { class, bytes });
            pkt.ingress_link = ModuleId::INVALID;
        }
    }

    fn pump_tx(&mut self, ctx: &mut Ctx) {
        while let Some(front) = self.tx_queue.front() {
            let non_posted = matches!(front.cmd, MemCmd::ReadReq | MemCmd::SnoopInv);
            if non_posted {
                if self.outstanding_np >= self.cfg.tags {
                    self.tag_stalls += 1;
                    break;
                }
                self.outstanding_np += 1;
                self.reads_sent += 1;
            } else if front.cmd == MemCmd::WriteReq {
                self.writes_sent += 1;
            }
            let mut pkt = self.tx_queue.pop_front().expect("front exists");
            pkt.route.push(ctx.self_id());
            ctx.send(self.up_link, units::ns(self.cfg.proc_ns), Msg::Packet(pkt));
        }
    }
}

impl Module for PcieEndpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Packet(mut pkt) => {
                let from_link = pkt.ingress_link.is_valid();
                if from_link {
                    self.drain_credit(&mut pkt, ctx);
                    if pkt.cmd.is_request() {
                        // MMIO or NUMA access from the host.
                        self.mmio_requests += 1;
                        debug_assert!(
                            self.mmio_range.contains(pkt.addr)
                                || self.inward_routes.iter().any(|(r, _)| r.contains(pkt.addr)),
                            "inward request outside BAR/routes: {:#x}",
                            pkt.addr
                        );
                        let target = self.inward_target(pkt.addr);
                        pkt.route.push(ctx.self_id());
                        ctx.send(target, units::ns(self.cfg.proc_ns), Msg::Packet(pkt));
                    } else {
                        // Completion for an outbound request.
                        self.completions += 1;
                        if pkt.cmd == MemCmd::ReadResp {
                            debug_assert!(self.outstanding_np > 0, "tag underflow");
                            self.outstanding_np = self.outstanding_np.saturating_sub(1);
                        }
                        if let Some(next) = pkt.route.pop() {
                            ctx.send(next, units::ns(self.cfg.proc_ns), Msg::Packet(pkt));
                        }
                        self.pump_tx(ctx);
                    }
                } else if pkt.cmd.is_request() {
                    // Outbound request from the device internals.
                    self.tx_queue.push_back(pkt);
                    self.pump_tx(ctx);
                } else {
                    // Response from device internals (MMIO completion).
                    ctx.send(self.up_link, units::ns(self.cfg.proc_ns), Msg::Packet(pkt));
                }
            }
            Msg::Timer(_) => self.pump_tx(ctx),
            _ => {}
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("reads_sent", self.reads_sent as f64);
        out.add("writes_sent", self.writes_sent as f64);
        out.add("completions", self.completions as f64);
        out.add("mmio_requests", self.mmio_requests as f64);
        out.add("tag_stalls", self.tag_stalls as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_sim::{Kernel, Packet, Tick};

    const BAR: AddrRange = AddrRange {
        base: 0x1_0000_0000,
        size: 0x1000_0000,
    };

    /// Fake link that echoes read requests back as responses after a
    /// fixed round-trip, preserving the route stack discipline.
    struct EchoLink {
        name: &'static str,
        rtt_ns: f64,
        seen: u64,
    }
    impl Module for EchoLink {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(mut p) = msg {
                self.seen += 1;
                if p.cmd == MemCmd::ReadReq {
                    p.make_response();
                    let next = p.route.pop().expect("EP pushed itself");
                    p.ingress_link = ctx.self_id();
                    ctx.send(next, units::ns(self.rtt_ns), Msg::Packet(p));
                }
            }
        }
    }

    /// Requester that fires `n` reads through the EP at t=0.
    struct Issuer {
        ep: ModuleId,
        n: u32,
        done: Vec<Tick>,
    }
    impl Module for Issuer {
        fn name(&self) -> &str {
            "iss"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(_) => {
                    for _ in 0..self.n {
                        let mut p = Packet::request(
                            ctx.alloc_pkt_id(),
                            MemCmd::ReadReq,
                            0x1000,
                            256,
                            ctx.now(),
                        );
                        p.route.push(ctx.self_id());
                        ctx.send(self.ep, 0, Msg::packet(p));
                    }
                }
                Msg::Packet(p) => {
                    assert_eq!(p.cmd, MemCmd::ReadResp);
                    self.done.push(ctx.now());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn tag_pool_limits_outstanding_reads() {
        let mut k = Kernel::new();
        let echo = k.add_module(Box::new(EchoLink {
            name: "echo",
            rtt_ns: 100.0,
            seen: 0,
        }));
        let cfg = PcieEndpointConfig {
            tags: 2,
            proc_ns: 0.0,
            ..PcieEndpointConfig::default()
        };
        let dummy_mmio = k.add_module(Box::new(EchoLink {
            name: "dummy_mmio",
            rtt_ns: 0.0,
            seen: 0,
        }));
        let ep = k.add_module(Box::new(PcieEndpoint::new(
            "ep", cfg, echo, dummy_mmio, BAR,
        )));
        let iss = k.add_module(Box::new(Issuer {
            ep,
            n: 6,
            done: vec![],
        }));
        k.schedule(0, iss, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let done = &k.module::<Issuer>(iss).unwrap().done;
        assert_eq!(done.len(), 6);
        // With 2 tags and a 100 ns RTT, completions arrive in waves of 2.
        assert_eq!(done[0], done[1]);
        assert!(done[2] >= done[1] + units::ns(100.0));
        let stats = k.stats();
        assert!(stats.get_or_zero("ep.tag_stalls") >= 1.0);
        assert_eq!(stats.get_or_zero("ep.completions"), 6.0);
    }

    #[test]
    fn mmio_requests_forward_to_controller() {
        struct Ctrl {
            got: u32,
        }
        impl Module for Ctrl {
            fn name(&self) -> &str {
                "ctrl"
            }
            fn handle(&mut self, msg: Msg, _ctx: &mut Ctx) {
                if let Msg::Packet(p) = msg {
                    assert!(p.cmd.is_request());
                    self.got += 1;
                }
            }
        }
        let mut k = Kernel::new();
        let link = k.add_module(Box::new(EchoLink {
            name: "link",
            rtt_ns: 0.0,
            seen: 0,
        }));
        let ctrl = k.add_module(Box::new(Ctrl { got: 0 }));
        let ep = k.add_module(Box::new(PcieEndpoint::new(
            "ep",
            PcieEndpointConfig::default(),
            link,
            ctrl,
            BAR,
        )));
        let mut p = Packet::request(0, MemCmd::WriteReq, BAR.base + 8, 8, 0);
        p.ingress_link = link; // pretend it came over the wire
        k.schedule(0, ep, Msg::packet(p));
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Ctrl>(ctrl).unwrap().got, 1);
        assert_eq!(k.stats().get_or_zero("ep.mmio_requests"), 1.0);
    }
}
