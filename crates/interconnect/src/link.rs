//! Unidirectional PCIe link with serialization and credit flow control.

use accesys_sim::{units, CreditClass, Ctx, MemCmd, Module, ModuleId, Msg, PacketBox, Stats, Tick};
use std::collections::VecDeque;

/// Configuration of one [`PcieLink`] direction.
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PcieLinkConfig {
    /// Number of lanes (paper sweeps 2, 4, 8, 16).
    pub lanes: u32,
    /// Raw line rate per lane in Gb/s (paper sweeps 2 – 64).
    pub lane_gbps: f64,
    /// Encoding efficiency: 0.8 for 8b/10b (gen 1/2), 128/130 for gen 3+.
    pub encoding_efficiency: f64,
    /// Propagation delay of the wire in nanoseconds.
    pub prop_delay_ns: f64,
    /// Per-TLP header + framing overhead on the wire, in bytes.
    pub header_bytes: u32,
    /// Receiver buffer (credit pool) for posted requests, in bytes.
    pub posted_credit_bytes: u32,
    /// Receiver buffer for non-posted requests, in bytes.
    pub nonposted_credit_bytes: u32,
    /// Receiver buffer for completions, in bytes.
    pub completion_credit_bytes: u32,
    /// Probability that a TLP is corrupted on the wire and replayed by
    /// the data-link layer (0 disables error injection). Sampled from a
    /// deterministic per-link PRNG so runs stay reproducible.
    pub error_rate: f64,
    /// Extra latency of one ACK/NAK replay round, in nanoseconds (the
    /// replay also re-serializes the TLP).
    pub replay_ns: f64,
}

impl PcieLinkConfig {
    /// PCIe 2.0 ×4 (the paper's Table II baseline): 4 Gb/s effective.
    pub fn gen2_x4() -> Self {
        PcieLinkConfig {
            lanes: 4,
            lane_gbps: 5.0,
            encoding_efficiency: 0.8,
            prop_delay_ns: 10.0,
            header_bytes: 24,
            // Per-hop receiver buffers: large TLPs fit only a couple of
            // packets, so store-and-forward pipelining degrades — the
            // large-packet arm of the paper's Fig. 4 convexity.
            posted_credit_bytes: 8 << 10,
            nonposted_credit_bytes: 4 << 10,
            completion_credit_bytes: 6 << 10,
            error_rate: 0.0,
            replay_ns: 100.0,
        }
    }

    /// A link built from a standard [`crate::PcieGen`] with `lanes` lanes.
    pub fn gen(generation: crate::PcieGen, lanes: u32) -> Self {
        PcieLinkConfig {
            lanes,
            lane_gbps: generation.raw_gt_s(),
            encoding_efficiency: generation.encoding_efficiency(),
            ..Self::gen2_x4()
        }
    }

    /// A link tuned to an aggregate bandwidth in GB/s (used by the sweeps
    /// that talk about "a 8 GB/s PCIe link").
    pub fn with_bandwidth_gbps(gb_per_s: f64) -> Self {
        let mut cfg = Self::gen2_x4();
        cfg.encoding_efficiency = 128.0 / 130.0;
        cfg.lanes = 16;
        cfg.lane_gbps = gb_per_s * 8.0 / cfg.lanes as f64 / cfg.encoding_efficiency;
        cfg
    }

    /// Effective bandwidth in GB/s after encoding.
    pub fn bandwidth_gbps(&self) -> f64 {
        units::link_gb_per_s(self.lanes, self.lane_gbps, self.encoding_efficiency)
    }

    /// Credit pool for `class`, in bytes.
    pub fn credit_bytes(&self, class: CreditClass) -> u32 {
        match class {
            CreditClass::Posted => self.posted_credit_bytes,
            CreditClass::NonPosted => self.nonposted_credit_bytes,
            CreditClass::Completion => self.completion_credit_bytes,
        }
    }
}

fn class_of(cmd: MemCmd) -> CreditClass {
    match cmd {
        MemCmd::WriteReq => CreditClass::Posted,
        MemCmd::ReadReq | MemCmd::SnoopInv => CreditClass::NonPosted,
        MemCmd::ReadResp | MemCmd::WriteResp | MemCmd::SnoopInvAck => CreditClass::Completion,
    }
}

/// One direction of a PCIe link: serializes TLPs at
/// `lanes × rate × efficiency`, delivers them to a fixed destination after
/// store-and-forward (full serialization) plus propagation delay, and
/// enforces per-class byte credits that model the receiver's ingress
/// buffers. Receivers return credits with [`Msg::Credit`] once a packet
/// leaves their buffer.
///
/// Physical links are modelled as a pair of `PcieLink`s, one per
/// direction, like gem5 port pairs.
pub struct PcieLink {
    name: String,
    cfg: PcieLinkConfig,
    dst: ModuleId,
    credits: [i64; 3],
    queues: [VecDeque<PacketBox>; 3],
    tx_free: Tick,
    rng: u64,
    // stats
    tlps: u64,
    wire_bytes: u64,
    payload_bytes: u64,
    credit_stall_tlps: u64,
    replayed_tlps: u64,
    busy: Tick,
}

impl PcieLink {
    /// Create a link direction that delivers to `dst`.
    pub fn new(name: &str, cfg: PcieLinkConfig, dst: ModuleId) -> Self {
        assert!(cfg.lanes > 0 && cfg.lane_gbps > 0.0);
        assert!(cfg.encoding_efficiency > 0.0 && cfg.encoding_efficiency <= 1.0);
        let credits = [
            i64::from(cfg.posted_credit_bytes),
            i64::from(cfg.nonposted_credit_bytes),
            i64::from(cfg.completion_credit_bytes),
        ];
        // Seed the replay PRNG from the instance name so every link has
        // an independent but reproducible error sequence.
        let seed = name
            .bytes()
            .fold(0xD6E8_FEB8_6659_FD93_u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
            })
            .max(1);
        PcieLink {
            name: name.to_string(),
            cfg,
            dst,
            credits,
            queues: Default::default(),
            tx_free: 0,
            rng: seed,
            tlps: 0,
            wire_bytes: 0,
            payload_bytes: 0,
            credit_stall_tlps: 0,
            replayed_tlps: 0,
            busy: 0,
        }
    }

    /// Next sample of the deterministic xorshift64* PRNG, in `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let y = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (y >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The configuration this link was built with.
    pub fn config(&self) -> PcieLinkConfig {
        self.cfg
    }

    /// Try to transmit queued TLPs, in class round-robin order, consuming
    /// credits and booking serialization time.
    fn pump(&mut self, ctx: &mut Ctx) {
        loop {
            let mut sent_any = false;
            for class in CreditClass::ALL {
                let ci = class.index();
                let Some(front) = self.queues[ci].front() else {
                    continue;
                };
                let wire = i64::from(front.wire_bytes(self.cfg.header_bytes));
                if self.credits[ci] < wire {
                    continue;
                }
                let mut pkt = self.queues[ci].pop_front().expect("front exists");
                self.credits[ci] -= wire;
                let ser = units::transfer_time(wire as u64, self.cfg.bandwidth_gbps());
                let tx_start = self.tx_free.max(ctx.now());
                let mut tx_end = tx_start + ser;
                // Data-link-layer error: the TLP is NAKed and replayed,
                // costing one replay round plus a second serialization.
                if self.cfg.error_rate > 0.0 && self.next_unit() < self.cfg.error_rate {
                    tx_end += units::ns(self.cfg.replay_ns) + ser;
                    self.replayed_tlps += 1;
                    self.busy += ser;
                    self.wire_bytes += wire as u64;
                }
                self.tx_free = tx_end;
                self.busy += ser;
                self.tlps += 1;
                self.wire_bytes += wire as u64;
                if pkt.cmd.carries_data() {
                    self.payload_bytes += u64::from(pkt.size);
                }
                // Store-and-forward: the receiver has the full TLP only
                // after serialization plus wire propagation.
                let arrive = tx_end + units::ns(self.cfg.prop_delay_ns);
                // Store-and-forward: the previous hop's buffer holds the
                // TLP until we have fully transmitted it.
                if pkt.ingress_link.is_valid() {
                    ctx.send_at(
                        pkt.ingress_link,
                        tx_end,
                        Msg::Credit {
                            class,
                            bytes: wire as u32,
                        },
                    );
                }
                pkt.ingress_link = ctx.self_id();
                ctx.send_at(self.dst, arrive, Msg::Packet(pkt));
                sent_any = true;
            }
            if !sent_any {
                break;
            }
        }
    }
}

impl Module for PcieLink {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Packet(pkt) => {
                let class = class_of(pkt.cmd);
                let wire = i64::from(pkt.wire_bytes(self.cfg.header_bytes));
                if self.credits[class.index()] < wire || !self.queues[class.index()].is_empty() {
                    self.credit_stall_tlps += 1;
                }
                self.queues[class.index()].push_back(pkt);
                self.pump(ctx);
            }
            Msg::Credit { class, bytes } => {
                self.credits[class.index()] += i64::from(bytes);
                debug_assert!(
                    self.credits[class.index()] <= i64::from(self.cfg.credit_bytes(class)),
                    "credit overflow on {}",
                    self.name
                );
                self.pump(ctx);
            }
            Msg::Timer(_) => self.pump(ctx),
            _ => {}
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("tlps", self.tlps as f64);
        out.add("wire_bytes", self.wire_bytes as f64);
        out.add("payload_bytes", self.payload_bytes as f64);
        out.add("credit_stall_tlps", self.credit_stall_tlps as f64);
        out.add("replayed_tlps", self.replayed_tlps as f64);
        out.add("busy_ns", units::to_ns(self.busy));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_sim::{Kernel, Packet};

    /// Sink that consumes packets after `proc_ns` and returns credits.
    struct Sink {
        proc_ns: f64,
        got: Vec<(Tick, u32)>,
    }

    impl Module for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(pkt) = msg {
                self.got.push((ctx.now(), pkt.size));
                let class = class_of(pkt.cmd);
                let wire = pkt.wire_bytes(24);
                ctx.send(
                    pkt.ingress_link,
                    units::ns(self.proc_ns),
                    Msg::Credit { class, bytes: wire },
                );
            }
        }
    }

    fn send_writes(
        cfg: PcieLinkConfig,
        count: u32,
        size: u32,
        sink_proc_ns: f64,
    ) -> (Vec<(Tick, u32)>, Stats) {
        let mut k = Kernel::new();
        let sink = k.add_module(Box::new(Sink {
            proc_ns: sink_proc_ns,
            got: vec![],
        }));
        let link = k.add_module(Box::new(PcieLink::new("link", cfg, sink)));
        for i in 0..count {
            let pkt = Packet::request(u64::from(i), MemCmd::WriteReq, 0x1000, size, 0);
            k.schedule(0, link, Msg::packet(pkt));
        }
        k.run_until_idle().unwrap();
        (k.module::<Sink>(sink).unwrap().got.clone(), k.stats())
    }

    #[test]
    fn single_tlp_time_is_serialization_plus_prop() {
        // 2 GB/s link (16 lanes * 1.015625 Gb/s * 128/130 ≈ 2 GB/s).
        let cfg = PcieLinkConfig {
            lanes: 4,
            lane_gbps: 5.0,
            encoding_efficiency: 0.8,
            prop_delay_ns: 10.0,
            header_bytes: 24,
            posted_credit_bytes: 1 << 20,
            nonposted_credit_bytes: 1 << 20,
            completion_credit_bytes: 1 << 20,
            error_rate: 0.0,
            replay_ns: 100.0,
        };
        // bandwidth = 4*5*0.8/8 = 2 GB/s; wire = 256+24 = 280 B -> 140 ns.
        let (got, _) = send_writes(cfg, 1, 256, 0.0);
        assert_eq!(got, vec![(units::ns(150.0), 256)]);
    }

    #[test]
    fn stream_is_bandwidth_limited_with_ample_credits() {
        let cfg = PcieLinkConfig {
            posted_credit_bytes: 1 << 20,
            ..PcieLinkConfig::gen2_x4()
        };
        let (got, stats) = send_writes(cfg, 64, 256, 0.0);
        let last = got.last().unwrap().0;
        // 64 TLPs * 280 B / 2 GB/s = 8960 ns (+10 prop).
        let ideal = units::ns(64.0 * 280.0 / 2.0 + 10.0);
        assert!(
            last >= ideal && last < ideal + units::ns(5.0),
            "last={last} ideal={ideal}"
        );
        assert_eq!(stats.get_or_zero("link.tlps"), 64.0);
        assert_eq!(stats.get_or_zero("link.payload_bytes"), 64.0 * 256.0);
    }

    #[test]
    fn tight_credits_throttle_to_receiver_rate() {
        // Pool of exactly one TLP: sender must wait for the sink's credit.
        let cfg = PcieLinkConfig {
            posted_credit_bytes: 280,
            ..PcieLinkConfig::gen2_x4()
        };
        let (got, stats) = send_writes(cfg, 8, 256, 500.0);
        // Steady state period >= sink processing (500 ns) per TLP.
        let deltas: Vec<Tick> = got.windows(2).map(|w| w[1].0 - w[0].0).collect();
        for d in &deltas {
            assert!(*d >= units::ns(500.0), "delta {d}");
        }
        assert!(stats.get_or_zero("link.credit_stall_tlps") >= 7.0);
    }

    #[test]
    fn credits_never_go_negative_or_overflow() {
        let cfg = PcieLinkConfig {
            posted_credit_bytes: 600,
            ..PcieLinkConfig::gen2_x4()
        };
        // Mixed sizes; the debug_assert in handle() checks overflow.
        let mut k = Kernel::new();
        let sink = k.add_module(Box::new(Sink {
            proc_ns: 50.0,
            got: vec![],
        }));
        let link = k.add_module(Box::new(PcieLink::new("link", cfg, sink)));
        for i in 0..32u32 {
            let size = 64 + (i % 4) * 64;
            let pkt = Packet::request(u64::from(i), MemCmd::WriteReq, 0, size, 0);
            k.schedule(u64::from(i) * 10, link, Msg::packet(pkt));
        }
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Sink>(sink).unwrap().got.len(), 32);
    }

    #[test]
    fn read_requests_cost_header_only() {
        let cfg = PcieLinkConfig::gen2_x4();
        let mut k = Kernel::new();
        let sink = k.add_module(Box::new(Sink {
            proc_ns: 0.0,
            got: vec![],
        }));
        let link = k.add_module(Box::new(PcieLink::new("link", cfg, sink)));
        let pkt = Packet::request(0, MemCmd::ReadReq, 0, 4096, 0);
        k.schedule(0, link, Msg::packet(pkt));
        k.run_until_idle().unwrap();
        // 24 B at 2 GB/s = 12 ns + 10 ns prop.
        assert_eq!(k.module::<Sink>(sink).unwrap().got[0].0, units::ns(22.0));
        assert_eq!(k.stats().get_or_zero("link.wire_bytes"), 24.0);
    }

    #[test]
    fn bandwidth_scales_with_lanes_and_rate() {
        for (lanes, gbps, expect) in [(2, 2.0, 0.4), (4, 4.0, 1.6), (16, 64.0, 102.4)] {
            let cfg = PcieLinkConfig {
                lanes,
                lane_gbps: gbps,
                encoding_efficiency: 0.8,
                ..PcieLinkConfig::gen2_x4()
            };
            assert!((cfg.bandwidth_gbps() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn with_bandwidth_helper_hits_target() {
        for target in [2.0, 8.0, 64.0] {
            let cfg = PcieLinkConfig::with_bandwidth_gbps(target);
            assert!((cfg.bandwidth_gbps() - target).abs() / target < 1e-9);
        }
    }

    #[test]
    fn error_injection_replays_and_slows_the_stream() {
        let clean = PcieLinkConfig {
            posted_credit_bytes: 1 << 20,
            ..PcieLinkConfig::gen2_x4()
        };
        let noisy = PcieLinkConfig {
            error_rate: 0.2,
            replay_ns: 200.0,
            ..clean
        };
        let (got_clean, s_clean) = send_writes(clean, 256, 256, 0.0);
        let (got_noisy, s_noisy) = send_writes(noisy, 256, 256, 0.0);
        assert_eq!(s_clean.get_or_zero("link.replayed_tlps"), 0.0);
        let replays = s_noisy.get_or_zero("link.replayed_tlps");
        // 256 TLPs at 20 % error rate: expect ≈51, allow wide PRNG slack.
        assert!(
            (20.0..=90.0).contains(&replays),
            "replays {replays} outside band"
        );
        assert!(got_noisy.last().unwrap().0 > got_clean.last().unwrap().0);
        // Every TLP still arrives exactly once.
        assert_eq!(got_noisy.len(), got_clean.len());
    }

    #[test]
    fn error_injection_is_deterministic_per_link_name() {
        let cfg = PcieLinkConfig {
            error_rate: 0.1,
            posted_credit_bytes: 1 << 20,
            ..PcieLinkConfig::gen2_x4()
        };
        let (_, s1) = send_writes(cfg, 128, 256, 0.0);
        let (_, s2) = send_writes(cfg, 128, 256, 0.0);
        assert_eq!(
            s1.get_or_zero("link.replayed_tlps"),
            s2.get_or_zero("link.replayed_tlps")
        );
    }
}
