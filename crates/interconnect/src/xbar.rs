//! The host memory bus (MemBus): an address-routed crossbar.

use crate::AddrRange;
use accesys_sim::{units, Ctx, Module, ModuleId, Msg, Stats, Tick};

/// Configuration of an [`Xbar`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct XbarConfig {
    /// Bus width in bytes per clock.
    pub width_bytes: u32,
    /// Bus clock in GHz.
    pub freq_ghz: f64,
    /// Forwarding latency in nanoseconds (decode + arbitration).
    pub latency_ns: f64,
}

impl Default for XbarConfig {
    fn default() -> Self {
        XbarConfig {
            width_bytes: 64,
            freq_ghz: 1.0,
            latency_ns: 2.0,
        }
    }
}

/// The system memory bus: routes requests by address range, routes
/// responses via the packet route stack, and models shared-bus occupancy
/// (width × frequency) plus a fixed forwarding latency.
///
/// Matches the role of gem5's `MemBus` in the paper's Fig. 1: the CPU
/// cluster, the memory controller, the PCIe root complex and the SMMU all
/// hang off this module.
pub struct Xbar {
    name: String,
    cfg: XbarConfig,
    routes: Vec<(AddrRange, ModuleId)>,
    default_dst: ModuleId,
    next_free: Tick,
    forwarded: u64,
    bytes: u64,
    busy: Tick,
}

impl Xbar {
    /// Create a bus whose unmatched requests go to `default_dst`.
    pub fn new(name: &str, cfg: XbarConfig, default_dst: ModuleId) -> Self {
        Xbar {
            name: name.to_string(),
            cfg,
            routes: Vec::new(),
            default_dst,
            next_free: 0,
            forwarded: 0,
            bytes: 0,
            busy: 0,
        }
    }

    /// Route requests for `range` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `range` overlaps an existing route.
    pub fn add_route(&mut self, range: AddrRange, dst: ModuleId) {
        for (existing, _) in &self.routes {
            assert!(
                !existing.overlaps(&range),
                "route {range} overlaps existing {existing}"
            );
        }
        self.routes.push((range, dst));
    }

    /// Builder-style [`Xbar::add_route`].
    pub fn with_route(mut self, range: AddrRange, dst: ModuleId) -> Self {
        self.add_route(range, dst);
        self
    }

    fn route(&self, addr: u64) -> ModuleId {
        self.routes
            .iter()
            .find(|(r, _)| r.contains(addr))
            .map(|&(_, dst)| dst)
            .unwrap_or(self.default_dst)
    }

    fn occupancy(&self, bytes: u32) -> Tick {
        let cycles = bytes.div_ceil(self.cfg.width_bytes).max(1) as u64;
        cycles * units::clock_period_ghz(self.cfg.freq_ghz)
    }
}

impl Module for Xbar {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        let mut pkt = match msg {
            Msg::Packet(p) => p,
            _ => return,
        };
        self.forwarded += 1;
        self.bytes += u64::from(pkt.size);
        let occ = self.occupancy(pkt.size);
        let start = self.next_free.max(ctx.now());
        self.next_free = start + occ;
        self.busy += occ;
        let out_at = start + occ + units::ns(self.cfg.latency_ns);

        if pkt.cmd.is_request() {
            let dst = self.route(pkt.addr);
            pkt.route.push(ctx.self_id());
            ctx.send_at(dst, out_at, Msg::Packet(pkt));
        } else if let Some(next) = pkt.route.pop() {
            ctx.send_at(next, out_at, Msg::Packet(pkt));
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("forwarded", self.forwarded as f64);
        out.add("bytes", self.bytes as f64);
        out.add("busy_ns", units::to_ns(self.busy));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
    use accesys_sim::{Kernel, MemCmd, Packet};

    struct Probe {
        bus: ModuleId,
        targets: Vec<u64>,
        next: usize,
        done: Vec<(u64, Tick)>,
    }

    impl Probe {
        fn issue(&mut self, ctx: &mut Ctx) {
            let addr = self.targets[self.next];
            self.next += 1;
            let mut p = Packet::request(ctx.alloc_pkt_id(), MemCmd::ReadReq, addr, 64, ctx.now());
            p.route.push(ctx.self_id());
            ctx.send(self.bus, 0, Msg::packet(p));
        }
    }

    impl Module for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(_) => self.issue(ctx),
                Msg::Packet(p) => {
                    self.done.push((p.addr, ctx.now()));
                    if self.next < self.targets.len() {
                        self.issue(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn routes_by_address_and_returns_responses() {
        let mut k = Kernel::new();
        let fast = SimpleMemoryConfig {
            latency_ns: 5.0,
            bandwidth_gbps: 64.0,
        };
        let slow = SimpleMemoryConfig {
            latency_ns: 500.0,
            bandwidth_gbps: 1.0,
        };
        let m_fast = k.add_module(Box::new(SimpleMemory::new("fast", fast)));
        let m_slow = k.add_module(Box::new(SimpleMemory::new("slow", slow)));
        let mut bus = Xbar::new("bus", XbarConfig::default(), m_fast);
        bus.add_route(AddrRange::new(0x8000_0000, 0x1000), m_slow);
        let bus = k.add_module(Box::new(bus));
        let probe = k.add_module(Box::new(Probe {
            bus,
            targets: vec![0x100, 0x8000_0000],
            next: 0,
            done: vec![],
        }));
        k.schedule(0, probe, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let done = &k.module::<Probe>(probe).unwrap().done;
        assert_eq!(done.len(), 2);
        let t_fast = done[0].1;
        let t_slow = done[1].1 - done[0].1;
        assert!(t_fast < units::ns(50.0), "fast path took {t_fast}");
        assert!(t_slow > units::ns(500.0), "slow path took {t_slow}");
        let stats = k.stats();
        assert_eq!(stats.get_or_zero("fast.reads"), 1.0);
        assert_eq!(stats.get_or_zero("slow.reads"), 1.0);
        // Each request + each response crosses the bus once.
        assert_eq!(stats.get_or_zero("bus.forwarded"), 4.0);
    }

    #[test]
    #[should_panic(expected = "overlaps existing")]
    fn overlapping_routes_panic() {
        let mut bus = Xbar::new("bus", XbarConfig::default(), ModuleId::INVALID);
        bus.add_route(AddrRange::new(0, 0x1000), ModuleId::INVALID);
        bus.add_route(AddrRange::new(0x800, 0x1000), ModuleId::INVALID);
    }

    #[test]
    fn occupancy_serializes_wide_transfers() {
        // 64 B/cycle at 1 GHz = 64 GB/s bus; a 4 KiB packet occupies 64 cycles.
        let bus = Xbar::new("bus", XbarConfig::default(), ModuleId::INVALID);
        assert_eq!(bus.occupancy(4096), 64 * 1000);
        assert_eq!(bus.occupancy(1), 1000);
    }
}
