//! # accesys-accel
//!
//! The accelerator wrapper of the Gem5-AcceSys reproduction, hosting the
//! MatrixFlow systolic array (16×16 multiply–accumulate units, integer
//! data) behind an accelerator controller.
//!
//! * [`SystolicArray`] — timing model of the array: output-stationary
//!   dataflow, `k + rows + cols` cycles per tile, with an optional
//!   compute-time override used by the paper's Fig. 2 roofline sweep.
//! * [`GemmOperands`] — the functional backend. The paper runs the RTL
//!   through Verilator as a child process; here a functional i32 GEMM
//!   stands behind the same controller so results remain checkable.
//! * [`AccelController`] — the wrapper FSM: splits the GEMM into
//!   super-blocks and k-chunks sized to the local buffer, double-buffers
//!   loads on dedicated DMA channels, overlaps compute with data
//!   movement, writes back C blocks, and raises an MSI when done.

mod array;
mod controller;
mod job;
pub mod transport;
mod worker;

pub use array::{SystolicArray, SystolicConfig};
pub use controller::{AccelController, AccelControllerConfig, JobRecord};
pub use job::{AccelJob, GemmOperands};
pub use transport::{PipeChild, TransportError};
pub use worker::{serve_worker, ChildWorker, ComputeBackend, WorkerError};
