//! The accelerator wrapper controller: blocking, double buffering, MSI.

use crate::{AccelJob, ChildWorker, ComputeBackend, SystolicArray, SystolicConfig};
use accesys_dma::{DmaDescriptor, DmaDone};
use accesys_sim::{units, Ctx, MemCmd, Module, ModuleId, Msg, Packet, Stats, Tick};
use std::collections::VecDeque;

/// Configuration of an [`AccelController`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AccelControllerConfig {
    /// The systolic array timing model.
    pub array: SystolicConfig,
    /// Output super-block rows held in the local buffer.
    pub block_rows: u32,
    /// Output super-block columns held in the local buffer.
    pub block_cols: u32,
    /// Local memory buffer capacity in bytes (holds the C block plus
    /// double-buffered A and B chunks).
    pub local_buffer_bytes: u64,
    /// Doorbell-to-first-DMA decode latency in nanoseconds.
    pub start_latency_ns: f64,
}

impl Default for AccelControllerConfig {
    fn default() -> Self {
        AccelControllerConfig {
            array: SystolicConfig::default(),
            block_rows: 128,
            block_cols: 128,
            local_buffer_bytes: 1 << 20,
            start_latency_ns: 100.0,
        }
    }
}

impl AccelControllerConfig {
    /// Largest k-chunk (multiple of 16) whose double-buffered A/B working
    /// set fits in the local buffer alongside one C block. System
    /// builders use this to lay out the pre-tiled panel regions.
    ///
    /// # Panics
    ///
    /// Panics if even a 16-deep chunk does not fit.
    pub fn choose_kc(&self, k: u32, dtype_bytes: u32) -> u32 {
        let d = u64::from(dtype_bytes);
        let br = u64::from(self.block_rows);
        let bc = u64::from(self.block_cols);
        let c_bytes = br * bc * d;
        assert!(
            c_bytes < self.local_buffer_bytes,
            "local buffer cannot hold one C block"
        );
        let per_kc = 2 * (br + bc) * d; // double-buffered A and B
        let max_kc = (self.local_buffer_bytes - c_bytes) / per_kc;
        let kc = (max_kc as u32 / 16) * 16;
        assert!(kc >= 16, "local buffer too small for a 16-deep k-chunk");
        kc.min(k.div_ceil(16) * 16).min(k.max(16))
    }

    /// Pre-tiled panel region sizes `(a_bytes, b_bytes, c_bytes)` for a
    /// `m×n×k` job under this blocking.
    pub fn region_bytes(&self, m: u32, n: u32, k: u32, dtype_bytes: u32) -> (u64, u64, u64) {
        let kc = self.choose_kc(k, dtype_bytes);
        let d = u64::from(dtype_bytes);
        let nbi = u64::from(m.div_ceil(self.block_rows));
        let nbj = u64::from(n.div_ceil(self.block_cols));
        let nkc = u64::from(k.div_ceil(kc));
        let a = nbi * nkc * u64::from(self.block_rows) * u64::from(kc) * d;
        let b = nbj * nkc * u64::from(kc) * u64::from(self.block_cols) * d;
        let c = nbi * nbj * u64::from(self.block_rows) * u64::from(self.block_cols) * d;
        (a, b, c)
    }
}

/// Completion record of one accelerator job.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobRecord {
    /// Job cookie.
    pub cookie: u64,
    /// Tick the doorbell started the job.
    pub started: Tick,
    /// Tick the MSI was raised.
    pub finished: Tick,
    /// Bytes loaded (A and B traffic).
    pub bytes_loaded: u64,
    /// Bytes stored (C traffic).
    pub bytes_stored: u64,
    /// Time the array spent computing, in nanoseconds.
    pub compute_busy_ns: f64,
}

impl JobRecord {
    /// Wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        units::to_ns(self.finished - self.started)
    }

    /// Fraction of the job the array was busy (compute-boundedness).
    pub fn compute_utilization(&self) -> f64 {
        if self.finished == self.started {
            0.0
        } else {
            self.compute_busy_ns / self.duration_ns()
        }
    }
}

const DEPTH: usize = 2;
const KIND_A: u64 = 1 << 56;
const KIND_B: u64 = 2 << 56;
const KIND_C: u64 = 3 << 56;
const KIND_MASK: u64 = 0xFF << 56;
const CH_A: u32 = 0;
const CH_B: u32 = 1;
const CH_C: u32 = 2;
const TAG_COMPUTE: u64 = 10;
const TAG_START: u64 = 11;

#[derive(Copy, Clone, Debug, Default)]
struct Slot {
    q: u64,
    a_done: bool,
    b_done: bool,
}

struct Run {
    job: AccelJob,
    nbi: u64,
    nbj: u64,
    nkc: u64,
    kc: u32,
    total: u64,
    q_issued: u64,
    q_computed: u64,
    slots: [Slot; DEPTH],
    computing: bool,
    outstanding_c: u32,
    started: Tick,
    bytes_loaded: u64,
    bytes_stored: u64,
    compute_busy_ns: f64,
}

impl Run {
    fn decode(&self, q: u64) -> (u64, u64, u64) {
        let bi = q / (self.nbj * self.nkc);
        let bj = (q / self.nkc) % self.nbj;
        let kc = q % self.nkc;
        debug_assert!(bi < self.nbi, "chunk index out of range");
        (bi, bj, kc)
    }

    /// Rows of super-block `bi` (last block may be partial).
    fn block_rows(&self, bi: u64, cfg_rows: u32) -> u32 {
        let start = bi * u64::from(cfg_rows);
        (u64::from(self.job.m) - start.min(u64::from(self.job.m))).min(u64::from(cfg_rows)) as u32
    }

    fn block_cols(&self, bj: u64, cfg_cols: u32) -> u32 {
        let start = bj * u64::from(cfg_cols);
        (u64::from(self.job.n) - start.min(u64::from(self.job.n))).min(u64::from(cfg_cols)) as u32
    }

    fn chunk_k(&self, kci: u64) -> u32 {
        let start = kci * u64::from(self.kc);
        (u64::from(self.job.k) - start.min(u64::from(self.job.k))).min(u64::from(self.kc)) as u32
    }
}

/// The accelerator wrapper controller.
///
/// Receives doorbell MMIO writes from the PCIe endpoint, runs queued
/// [`AccelJob`]s as a blocked GEMM (super-blocks of
/// `block_rows × block_cols`, k-chunks sized to the local buffer),
/// double-buffers A/B loads on DMA channels 0/1 against the systolic
/// array's compute, writes C blocks on channel 2, and raises an MSI
/// (posted write through the endpoint) when the last C byte is stored.
pub struct AccelController {
    name: String,
    cfg: AccelControllerConfig,
    backend: ComputeBackend,
    dma: ModuleId,
    ep: ModuleId,
    queue: VecDeque<AccelJob>,
    pending_doorbells: u32,
    run: Option<Run>,
    records: Vec<JobRecord>,
    // stats
    doorbells: u64,
    mmio_reads: u64,
    msis: u64,
}

impl AccelController {
    /// Create a controller driving `dma` and signalling through `ep`.
    pub fn new(name: &str, cfg: AccelControllerConfig, dma: ModuleId, ep: ModuleId) -> Self {
        assert!(cfg.block_rows >= cfg.array.rows && cfg.block_cols >= cfg.array.cols);
        AccelController {
            name: name.to_string(),
            cfg,
            backend: ComputeBackend::InProcess(SystolicArray::new(cfg.array)),
            dma,
            ep,
            queue: VecDeque::new(),
            pending_doorbells: 0,
            run: None,
            records: Vec::new(),
            doorbells: 0,
            mmio_reads: 0,
            msis: 0,
        }
    }

    /// Switch compute to a spawned worker child process (Table I's
    /// "Child process (Multi-threaded)" accelerator model). Timing is
    /// identical to the in-process model; the functional GEMM runs in
    /// the child.
    pub fn with_child_worker(mut self, worker: ChildWorker) -> Self {
        self.backend = ComputeBackend::Child(Box::new(worker));
        self
    }

    /// Which process model serves compute: `"in-process"` or `"child"`.
    pub fn process_model(&self) -> &'static str {
        match self.backend {
            ComputeBackend::InProcess(_) => "in-process",
            ComputeBackend::Child(_) => "child",
        }
    }

    /// Queue a job (the driver model rings the doorbell separately).
    pub fn enqueue_job(&mut self, job: AccelJob) {
        assert!(job.m > 0 && job.n > 0 && job.k > 0, "degenerate GEMM");
        self.queue.push_back(job);
    }

    /// Completion records of finished jobs.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> AccelControllerConfig {
        self.cfg
    }

    /// Largest k-chunk fitting the local buffer; see
    /// [`AccelControllerConfig::choose_kc`].
    pub fn choose_kc(&self, k: u32, dtype_bytes: u32) -> u32 {
        self.cfg.choose_kc(k, dtype_bytes)
    }

    fn start_next_job(&mut self, ctx: &mut Ctx) {
        if self.run.is_some() || self.pending_doorbells == 0 || self.queue.is_empty() {
            return;
        }
        self.pending_doorbells -= 1;
        let job = self.queue.pop_front().expect("checked non-empty");
        let kc = self.choose_kc(job.k, job.dtype_bytes);
        let nbi = u64::from(job.m.div_ceil(self.cfg.block_rows));
        let nbj = u64::from(job.n.div_ceil(self.cfg.block_cols));
        let nkc = u64::from(job.k.div_ceil(kc));
        let run = Run {
            job,
            nbi,
            nbj,
            nkc,
            kc,
            total: nbi * nbj * nkc,
            q_issued: 0,
            q_computed: 0,
            slots: [Slot::default(); DEPTH],
            computing: false,
            outstanding_c: 0,
            started: ctx.now(),
            bytes_loaded: 0,
            bytes_stored: 0,
            compute_busy_ns: 0.0,
        };
        self.run = Some(run);
        ctx.timer(units::ns(self.cfg.start_latency_ns), TAG_START);
    }

    fn send_dma(
        &mut self,
        channel: u32,
        addr: u64,
        bytes: u64,
        write: bool,
        cookie: u64,
        ctx: &mut Ctx,
    ) {
        let run = self.run.as_ref().expect("DMA issued without a run");
        let desc = DmaDescriptor {
            channel,
            addr,
            bytes,
            write,
            virt: run.job.virt,
            target: run.job.data_target,
            notify: ctx.self_id(),
            cookie,
        };
        ctx.send(self.dma, 0, Msg::custom(desc));
    }

    fn pump_loads(&mut self, ctx: &mut Ctx) {
        loop {
            let Some(run) = self.run.as_mut() else {
                return;
            };
            if run.q_issued >= run.total || run.q_issued >= run.q_computed + DEPTH as u64 {
                return;
            }
            let q = run.q_issued;
            run.q_issued += 1;
            let (bi, bj, kci) = run.decode(q);
            let rows = run.block_rows(bi, self.cfg.block_rows);
            let cols = run.block_cols(bj, self.cfg.block_cols);
            let ck = run.chunk_k(kci);
            let d = u64::from(run.job.dtype_bytes);
            let a_bytes = u64::from(rows) * u64::from(ck) * d;
            let b_bytes = u64::from(ck) * u64::from(cols) * d;
            // Pre-tiled panel layout: panels are stored contiguously in
            // load order (the MatrixFlow "optimized data structure").
            let a_off =
                (bi * run.nkc + kci) * u64::from(self.cfg.block_rows) * u64::from(run.kc) * d;
            let b_off =
                (bj * run.nkc + kci) * u64::from(run.kc) * u64::from(self.cfg.block_cols) * d;
            run.slots[(q % DEPTH as u64) as usize] = Slot {
                q,
                a_done: false,
                b_done: false,
            };
            run.bytes_loaded += a_bytes + b_bytes;
            let (a_addr, b_addr) = (run.job.a_addr + a_off, run.job.b_addr + b_off);
            self.send_dma(CH_A, a_addr, a_bytes, false, KIND_A | q, ctx);
            self.send_dma(CH_B, b_addr, b_bytes, false, KIND_B | q, ctx);
        }
    }

    fn try_compute(&mut self, ctx: &mut Ctx) {
        let Some(run) = self.run.as_mut() else {
            return;
        };
        if run.computing || run.q_computed >= run.total {
            return;
        }
        let q = run.q_computed;
        let slot = run.slots[(q % DEPTH as u64) as usize];
        if slot.q != q || !slot.a_done || !slot.b_done {
            return;
        }
        let (bi, bj, kci) = run.decode(q);
        let rows = run.block_rows(bi, self.cfg.block_rows);
        let cols = run.block_cols(bj, self.cfg.block_cols);
        let ck = run.chunk_k(kci);
        let tiles = rows.div_ceil(self.cfg.array.rows) * cols.div_ceil(self.cfg.array.cols);
        let k_total = run.job.k;
        let t = self.backend.block_time(self.cfg.array, tiles, ck, k_total);
        let run = self.run.as_mut().expect("run still active");
        run.computing = true;
        run.compute_busy_ns += units::to_ns(t);
        ctx.timer(t, TAG_COMPUTE);
    }

    fn on_compute_done(&mut self, ctx: &mut Ctx) {
        let finished_block = {
            let Some(run) = self.run.as_mut() else {
                return;
            };
            run.computing = false;
            let q = run.q_computed;
            run.q_computed += 1;
            ((q + 1) % run.nkc == 0).then_some(q)
        };
        if let Some(q) = finished_block {
            // Write back the finished C super-block on the store channel.
            let run = self.run.as_mut().expect("run still active");
            let (bi, bj, _) = run.decode(q);
            let rows = run.block_rows(bi, self.cfg.block_rows);
            let cols = run.block_cols(bj, self.cfg.block_cols);
            let d = u64::from(run.job.dtype_bytes);
            let c_bytes = u64::from(rows) * u64::from(cols) * d;
            let c_off = (bi * run.nbj + bj)
                * u64::from(self.cfg.block_rows)
                * u64::from(self.cfg.block_cols)
                * d;
            run.outstanding_c += 1;
            run.bytes_stored += c_bytes;
            let block_index = bi * run.nbj + bj;
            let c_addr = run.job.c_addr + c_off;
            self.send_dma(CH_C, c_addr, c_bytes, true, KIND_C | block_index, ctx);
        }
        self.pump_loads(ctx);
        self.try_compute(ctx);
        self.maybe_finish(ctx);
    }

    fn maybe_finish(&mut self, ctx: &mut Ctx) {
        let done = self
            .run
            .as_ref()
            .is_some_and(|r| r.q_computed >= r.total && r.outstanding_c == 0 && !r.computing);
        if !done {
            return;
        }
        let run = self.run.take().expect("checked above");
        if let Some(functional) = &run.job.functional {
            self.backend.execute(functional);
        }
        self.records.push(JobRecord {
            cookie: run.job.cookie,
            started: run.started,
            finished: ctx.now(),
            bytes_loaded: run.bytes_loaded,
            bytes_stored: run.bytes_stored,
            compute_busy_ns: run.compute_busy_ns,
        });
        self.msis += 1;
        // MSI: posted write to the host interrupt window, through the EP.
        let mut msi = Packet::request(
            ctx.alloc_pkt_id(),
            MemCmd::WriteReq,
            run.job.msi_addr + 4 * run.job.cookie,
            4,
            ctx.now(),
        );
        msi.stream = accesys_sim::streams::DMA_BASE + 3;
        ctx.send(self.ep, 0, Msg::packet(msi));
        self.start_next_job(ctx);
    }

    fn on_dma_done(&mut self, done: DmaDone, ctx: &mut Ctx) {
        let kind = done.cookie & KIND_MASK;
        let q = done.cookie & !KIND_MASK;
        {
            let Some(run) = self.run.as_mut() else {
                return;
            };
            match kind {
                KIND_A | KIND_B => {
                    let slot = &mut run.slots[(q % DEPTH as u64) as usize];
                    debug_assert_eq!(slot.q, q, "DMA completion for a recycled slot");
                    if kind == KIND_A {
                        slot.a_done = true;
                    } else {
                        slot.b_done = true;
                    }
                }
                KIND_C => {
                    run.outstanding_c -= 1;
                }
                _ => unreachable!("unknown DMA cookie kind"),
            }
        }
        self.try_compute(ctx);
        self.maybe_finish(ctx);
    }
}

impl Module for AccelController {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Timer(TAG_START) => {
                self.pump_loads(ctx);
                self.try_compute(ctx);
            }
            Msg::Timer(TAG_COMPUTE) => self.on_compute_done(ctx),
            Msg::Timer(_) => {}
            Msg::Packet(mut pkt) => {
                if pkt.cmd == MemCmd::WriteReq {
                    // Doorbell (posted MMIO write).
                    self.doorbells += 1;
                    self.pending_doorbells += 1;
                    self.start_next_job(ctx);
                } else if pkt.cmd == MemCmd::ReadReq {
                    // Status register read: respond through the EP.
                    self.mmio_reads += 1;
                    pkt.make_response();
                    if let Some(next) = pkt.route.pop() {
                        ctx.send(next, units::ns(10.0), Msg::Packet(pkt));
                    }
                }
            }
            other => {
                if let Ok(done) = other.into_custom::<DmaDone>() {
                    self.on_dma_done(done, ctx);
                }
            }
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("doorbells", self.doorbells as f64);
        out.add("mmio_reads", self.mmio_reads as f64);
        out.add("msis", self.msis as f64);
        out.add("jobs_done", self.records.len() as f64);
        let loaded: u64 = self.records.iter().map(|r| r.bytes_loaded).sum();
        let stored: u64 = self.records.iter().map(|r| r.bytes_stored).sum();
        out.add("bytes_loaded", loaded as f64);
        out.add("bytes_stored", stored as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_dma::{DmaEngine, DmaEngineConfig};
    use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
    use accesys_sim::Kernel;
    use std::sync::Arc;

    /// Captures MSI writes (stands in for the PCIe EP + host path).
    struct MsiCatcher {
        got: Vec<(Tick, u64)>,
    }
    impl Module for MsiCatcher {
        fn name(&self) -> &str {
            "msi"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(p) = msg {
                if p.cmd == MemCmd::WriteReq {
                    self.got.push((ctx.now(), p.addr));
                }
            }
        }
    }

    struct Rig {
        kernel: Kernel,
        ctrl: ModuleId,
        msi: ModuleId,
        mem: ModuleId,
    }

    fn rig(cfg: AccelControllerConfig, mem_cfg: SimpleMemoryConfig) -> Rig {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new("mem", mem_cfg)));
        let dma = k.add_module(Box::new(DmaEngine::new(
            "dma",
            DmaEngineConfig {
                channels: 4,
                request_bytes: 256,
                max_inflight: 16,
                desc_latency_ns: 10.0,
            },
        )));
        let msi = k.add_module(Box::new(MsiCatcher { got: vec![] }));
        let ctrl = k.add_module(Box::new(AccelController::new("ctrl", cfg, dma, msi)));
        Rig {
            kernel: k,
            ctrl,
            msi,
            mem,
        }
    }

    fn job(m: u32, n: u32, k: u32, mem: ModuleId, cookie: u64) -> AccelJob {
        AccelJob {
            m,
            n,
            k,
            dtype_bytes: 4,
            a_addr: 0x100_0000,
            b_addr: 0x200_0000,
            c_addr: 0x300_0000,
            virt: false,
            data_target: mem,
            msi_addr: 0xFEE0_0000,
            cookie,
            functional: None,
        }
    }

    fn ring_doorbell(r: &mut Rig) {
        let db = Packet::request(9000, MemCmd::WriteReq, 0x1_0000_0000, 8, r.kernel.now());
        r.kernel.schedule(r.kernel.now(), r.ctrl, Msg::packet(db));
    }

    #[test]
    fn job_completes_and_raises_msi() {
        let mut r = rig(
            AccelControllerConfig::default(),
            SimpleMemoryConfig {
                latency_ns: 50.0,
                bandwidth_gbps: 8.0,
            },
        );
        let mem = r.mem;
        r.kernel
            .module_mut::<AccelController>(r.ctrl)
            .unwrap()
            .enqueue_job(job(256, 256, 256, mem, 7));
        ring_doorbell(&mut r);
        r.kernel.run_until_idle().unwrap();
        let msi = &r.kernel.module::<MsiCatcher>(r.msi).unwrap().got;
        assert_eq!(msi.len(), 1);
        assert_eq!(msi[0].1, 0xFEE0_0000 + 4 * 7);
        let ctrl = r.kernel.module::<AccelController>(r.ctrl).unwrap();
        let rec = &ctrl.records()[0];
        // Traffic: nbi=nbj=2, nkc=1 -> A loaded twice... (per (bi,bj,kc)):
        // 4 chunks x (128x256x4 + 256x128x4) = 1 MiB loaded, 256 KiB stored.
        assert_eq!(rec.bytes_loaded, 4 * 2 * 128 * 256 * 4);
        assert_eq!(rec.bytes_stored, 256 * 256 * 4);
        assert!(rec.duration_ns() > 0.0);
    }

    #[test]
    fn functional_backend_computes_real_product() {
        let mut r = rig(
            AccelControllerConfig::default(),
            SimpleMemoryConfig {
                latency_ns: 20.0,
                bandwidth_gbps: 16.0,
            },
        );
        let (m, n, k) = (48, 32, 40);
        let a: Vec<i32> = (0..m * k).map(|x| (x % 13) as i32 - 6).collect();
        let b: Vec<i32> = (0..k * n).map(|x| (x % 7) as i32 - 3).collect();
        let ops = Arc::new(GemmOperands::new(m, n, k, a, b));
        let mem = r.mem;
        let mut j = job(m as u32, n as u32, k as u32, mem, 0);
        j.functional = Some(ops.clone());
        r.kernel
            .module_mut::<AccelController>(r.ctrl)
            .unwrap()
            .enqueue_job(j);
        ring_doorbell(&mut r);
        r.kernel.run_until_idle().unwrap();
        assert_eq!(ops.result().expect("job ran"), ops.golden());
    }

    use crate::GemmOperands;

    #[test]
    fn double_buffering_overlaps_load_and_compute() {
        // With a slow array (override), loads should hide under compute:
        // total ≈ compute + first-load, far below compute + all-loads.
        let mem_cfg = SimpleMemoryConfig {
            latency_ns: 30.0,
            bandwidth_gbps: 4.0,
        };
        let mut cfg = AccelControllerConfig::default();
        cfg.array.compute_override_ns = Some(30_000.0); // strongly compute-bound
        let mut r = rig(cfg, mem_cfg);
        let mem = r.mem;
        r.kernel
            .module_mut::<AccelController>(r.ctrl)
            .unwrap()
            .enqueue_job(job(256, 256, 256, mem, 0));
        ring_doorbell(&mut r);
        r.kernel.run_until_idle().unwrap();
        let ctrl = r.kernel.module::<AccelController>(r.ctrl).unwrap();
        let rec = &ctrl.records()[0];
        // Compute: 4 chunks x 128 tiles... tiles/block = (128/16)^2 = 64;
        // override is per full-k tile so each block is 64 x 30 µs = 1.92 ms,
        // 4 blocks = 7.68 ms of compute.
        let compute_ns = rec.compute_busy_ns;
        let total_ns = rec.duration_ns();
        let load_ns = rec.bytes_loaded as f64 / 4.0; // 4 GB/s in ns
        assert!(
            total_ns < compute_ns + 0.35 * load_ns,
            "loads not hidden: total {total_ns} compute {compute_ns} loads {load_ns}"
        );
        assert!(total_ns >= compute_ns, "faster than the array allows");
    }

    #[test]
    fn partial_blocks_handle_odd_dimensions() {
        let mut r = rig(
            AccelControllerConfig::default(),
            SimpleMemoryConfig {
                latency_ns: 20.0,
                bandwidth_gbps: 16.0,
            },
        );
        let mem = r.mem;
        // 197 is the ViT sequence length: forces partial blocks every way.
        r.kernel
            .module_mut::<AccelController>(r.ctrl)
            .unwrap()
            .enqueue_job(job(197, 197, 197, mem, 1));
        ring_doorbell(&mut r);
        r.kernel.run_until_idle().unwrap();
        let ctrl = r.kernel.module::<AccelController>(r.ctrl).unwrap();
        assert_eq!(ctrl.records().len(), 1);
        // C bytes: exactly m*n*d even with partial blocks.
        assert_eq!(ctrl.records()[0].bytes_stored, 197 * 197 * 4);
    }

    #[test]
    fn queued_jobs_run_in_order_one_doorbell_each() {
        let mut r = rig(
            AccelControllerConfig::default(),
            SimpleMemoryConfig {
                latency_ns: 20.0,
                bandwidth_gbps: 16.0,
            },
        );
        let mem = r.mem;
        {
            let ctrl = r.kernel.module_mut::<AccelController>(r.ctrl).unwrap();
            ctrl.enqueue_job(job(128, 128, 128, mem, 0));
            ctrl.enqueue_job(job(128, 128, 128, mem, 1));
        }
        ring_doorbell(&mut r);
        r.kernel.run_until_idle().unwrap();
        // Only one doorbell: only the first job may run.
        assert_eq!(
            r.kernel
                .module::<AccelController>(r.ctrl)
                .unwrap()
                .records()
                .len(),
            1
        );
        ring_doorbell(&mut r);
        r.kernel.run_until_idle().unwrap();
        let recs = r
            .kernel
            .module::<AccelController>(r.ctrl)
            .unwrap()
            .records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].cookie, 0);
        assert_eq!(recs[1].cookie, 1);
    }

    #[test]
    fn choose_kc_respects_local_buffer() {
        let ctrl = AccelController::new(
            "c",
            AccelControllerConfig::default(),
            ModuleId::INVALID,
            ModuleId::INVALID,
        );
        // 1 MiB buffer, 128x128 C block (64 KiB), d=4: per-kc cost is
        // 2*(128+128)*4 = 2 KiB -> kc <= 480 -> rounded to 464? multiple of 16.
        let kc = ctrl.choose_kc(2048, 4);
        assert_eq!(kc % 16, 0);
        let c = 128 * 128 * 4u64;
        let used = c + 2 * (128 + 128) * 4 * u64::from(kc);
        assert!(used <= (1 << 20));
        // And a tiny k is not inflated.
        assert!(ctrl.choose_kc(64, 4) >= 64);
    }

    #[test]
    #[should_panic(expected = "local buffer")]
    fn too_small_buffer_panics() {
        let cfg = AccelControllerConfig {
            local_buffer_bytes: 64 << 10, // C block alone is 64 KiB
            ..AccelControllerConfig::default()
        };
        let ctrl = AccelController::new("c", cfg, ModuleId::INVALID, ModuleId::INVALID);
        ctrl.choose_kc(1024, 4);
    }
}
