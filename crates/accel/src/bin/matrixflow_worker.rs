//! The MatrixFlow worker executable: the accelerator as a child process.
//!
//! Speaks the newline-framed protocol documented in
//! [`accesys_accel::serve_worker`] on stdin/stdout. The simulator spawns
//! one of these per accelerator when the child-process model (Table I)
//! is selected.

use std::io::{stdin, stdout, BufReader, BufWriter};

fn main() -> std::io::Result<()> {
    let mut input = BufReader::new(stdin().lock());
    let mut output = BufWriter::new(stdout().lock());
    accesys_accel::serve_worker(&mut input, &mut output)
}
