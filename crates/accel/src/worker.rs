//! Child-process accelerator backend — Table I's "Acce Process Model:
//! Child process (Multi-threaded)".
//!
//! The original framework compiles the Verilator-generated accelerator
//! into a separate executable and runs it as a child process talking to
//! the simulator over shared memory. This module reproduces that process
//! architecture with a pipe protocol: the simulator ([`ChildWorker`])
//! spawns the `matrixflow-worker` binary and exchanges newline-framed
//! commands plus raw little-endian operand blocks with it. Timing queries
//! (`TIME`) return the same cycle model as the in-process
//! [`SystolicArray`], so the two backends are numerically identical; the
//! functional GEMM (`GEMM`) runs multi-threaded inside the child.
//!
//! Protocol, one request/response pair at a time:
//!
//! ```text
//! > PING
//! < PONG
//! > TIME <tiles> <k_chunk> <k_total> <rows> <cols> <freq_ghz> <override_ns|->
//! < TIME <ticks>
//! > GEMM <m> <n> <k>        (followed by (m*k + k*n) i32 LE values)
//! < DONE                    (followed by m*n i32 LE values)
//! > EXIT
//! ```

use crate::transport::{PipeChild, TransportError};
use crate::{GemmOperands, SystolicArray, SystolicConfig};
use accesys_sim::Tick;
use std::io::{BufRead, Read, Write};
use std::time::Duration;

/// Errors talking to a worker child process.
#[derive(Debug)]
pub enum WorkerError {
    /// Spawning or piping the child failed.
    Io(std::io::Error),
    /// The child answered with something the protocol does not allow.
    Protocol(String),
    /// The child died (or closed its pipe) mid-request; carries the
    /// exit code when the child was already reapable.
    Died(Option<i32>),
    /// The child stayed alive but answered nothing within the read
    /// deadline.
    Timeout(Duration),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Io(e) => write!(f, "worker i/o failed: {e}"),
            WorkerError::Protocol(line) => write!(f, "worker protocol violation: {line:?}"),
            WorkerError::Died(Some(code)) => {
                write!(f, "worker child died mid-request (exit code {code})")
            }
            WorkerError::Died(None) => {
                write!(f, "worker child died or closed its pipe mid-request")
            }
            WorkerError::Timeout(waited) => write!(
                f,
                "worker child answered nothing for {:.1}s (read deadline)",
                waited.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for WorkerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> Self {
        WorkerError::Io(e)
    }
}

impl From<TransportError> for WorkerError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Io(e) => WorkerError::Io(e),
            TransportError::Died { status } => WorkerError::Died(status),
            TransportError::Timeout { waited } => WorkerError::Timeout(waited),
        }
    }
}

/// Handle to a spawned `matrixflow-worker` child process.
///
/// Dropping the handle sends `EXIT` and reaps the child; a child that
/// ignores both the command and the closed pipe is killed (the
/// [`PipeChild`] drop contract), so a wedged worker can never leak past
/// its handle. Reads carry [`PipeChild`]'s deadline and liveness
/// checks: a child that dies or stops answering mid-request surfaces
/// as [`WorkerError::Died`] / [`WorkerError::Timeout`] instead of
/// hanging the simulation.
#[derive(Debug)]
pub struct ChildWorker {
    pipe: PipeChild,
    /// Timing round-trips served by the child.
    time_queries: u64,
    /// Functional GEMMs served by the child.
    gemms: u64,
}

impl ChildWorker {
    /// Spawn the worker executable at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerError::Io`] if the process cannot be spawned, and
    /// [`WorkerError::Protocol`] if it fails the initial `PING`.
    pub fn spawn(path: &std::path::Path) -> Result<Self, WorkerError> {
        let mut worker = ChildWorker {
            pipe: PipeChild::spawn(path)?,
            time_queries: 0,
            gemms: 0,
        };
        worker.send_line("PING")?;
        let pong = worker.read_line()?;
        if pong != "PONG" {
            return Err(WorkerError::Protocol(pong));
        }
        Ok(worker)
    }

    /// Change the per-read deadline (default
    /// [`PipeChild::DEFAULT_READ_DEADLINE`]).
    pub fn set_read_deadline(&mut self, deadline: Duration) {
        self.pipe.set_read_deadline(deadline);
    }

    fn send_line(&mut self, line: &str) -> Result<(), WorkerError> {
        self.pipe.send_line(line)?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, WorkerError> {
        Ok(self.pipe.read_line()?)
    }

    /// Ask the child for the block compute time — same semantics as
    /// [`SystolicArray::block_time`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkerError`] on pipe failure or a malformed reply.
    pub fn block_time(
        &mut self,
        cfg: SystolicConfig,
        tiles: u32,
        k_chunk: u32,
        k_total: u32,
    ) -> Result<Tick, WorkerError> {
        let ov = cfg
            .compute_override_ns
            .map_or_else(|| "-".to_string(), |v| v.to_string());
        self.send_line(&format!(
            "TIME {tiles} {k_chunk} {k_total} {} {} {} {ov}",
            cfg.rows, cfg.cols, cfg.freq_ghz
        ))?;
        self.time_queries += 1;
        let reply = self.read_line()?;
        let ticks = reply
            .strip_prefix("TIME ")
            .and_then(|t| t.parse::<Tick>().ok())
            .ok_or(WorkerError::Protocol(reply))?;
        Ok(ticks)
    }

    /// Run the functional GEMM in the child and store the result back
    /// into `ops` (the shared-memory data path of the original, carried
    /// over pipes).
    ///
    /// # Errors
    ///
    /// Returns [`WorkerError`] on pipe failure or a malformed reply.
    pub fn run_gemm(&mut self, ops: &GemmOperands) -> Result<(), WorkerError> {
        let (m, n, k) = ops.dims();
        self.send_line(&format!("GEMM {m} {n} {k}"))?;
        self.pipe.write_all(&le_bytes(ops.a()))?;
        self.pipe.write_all(&le_bytes(ops.b()))?;
        self.pipe.flush()?;
        self.gemms += 1;
        let reply = self.read_line()?;
        if reply != "DONE" {
            return Err(WorkerError::Protocol(reply));
        }
        let mut buf = vec![0u8; m * n * 4];
        self.pipe.read_exact(&mut buf)?;
        let c = buf
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        ops.set_result(c);
        Ok(())
    }

    /// Timing round-trips served so far.
    pub fn time_queries(&self) -> u64 {
        self.time_queries
    }

    /// Functional GEMMs served so far.
    pub fn gemms(&self) -> u64 {
        self.gemms
    }
}

impl Drop for ChildWorker {
    fn drop(&mut self) {
        // Best-effort polite shutdown; never fail in a destructor. The
        // inner PipeChild's drop then bounds the wait and kills a child
        // that does not exit on its own.
        let _ = self.send_line("EXIT");
    }
}

/// The accelerator's compute backend: the in-process timing model or a
/// spawned worker child (Table I's process model).
#[derive(Debug)]
pub enum ComputeBackend {
    /// Timing model evaluated inline (fast path, default).
    InProcess(SystolicArray),
    /// Timing and functional results served by a child process.
    Child(Box<ChildWorker>),
}

impl ComputeBackend {
    /// Block compute time for `tiles` output tiles over one k-chunk.
    ///
    /// # Panics
    ///
    /// Panics if the child process dies mid-simulation — a worker crash
    /// is not a recoverable simulation outcome.
    pub fn block_time(
        &mut self,
        cfg: SystolicConfig,
        tiles: u32,
        k_chunk: u32,
        k_total: u32,
    ) -> Tick {
        match self {
            ComputeBackend::InProcess(array) => array.block_time(tiles, k_chunk, k_total),
            ComputeBackend::Child(w) => w
                .block_time(cfg, tiles, k_chunk, k_total)
                .expect("worker child died mid-simulation"),
        }
    }

    /// Execute the functional GEMM on this backend.
    ///
    /// # Panics
    ///
    /// Panics if the child process dies mid-simulation.
    pub fn execute(&mut self, ops: &GemmOperands) {
        match self {
            ComputeBackend::InProcess(_) => ops.execute(),
            ComputeBackend::Child(w) => {
                w.run_gemm(ops).expect("worker child died mid-simulation");
            }
        }
    }
}

/// A slice of i32 values as little-endian bytes.
fn le_bytes(vals: &[i32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Write a slice of i32 values as little-endian bytes.
fn write_i32s<W: Write>(w: &mut W, vals: &[i32]) -> std::io::Result<()> {
    w.write_all(&le_bytes(vals))
}

/// Read exactly `count` little-endian i32 values.
fn read_i32s<R: Read>(r: &mut R, count: usize) -> std::io::Result<Vec<i32>> {
    let mut buf = vec![0u8; count * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Serve the worker protocol over `input`/`output` until `EXIT` or EOF.
///
/// This is the entire body of the `matrixflow-worker` binary, kept in the
/// library so both sides of the protocol are unit-testable in one place.
/// The functional GEMM is computed across multiple threads, reproducing
/// the "multi-threaded child" of the original framework.
///
/// # Errors
///
/// Returns an error when the pipes fail; protocol violations from the
/// parent terminate the loop with an error reply instead.
pub fn serve_worker<R: BufRead, W: Write>(input: &mut R, output: &mut W) -> std::io::Result<()> {
    loop {
        let mut line = String::new();
        if input.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let line = line.trim_end();
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("PING") => {
                writeln!(output, "PONG")?;
                output.flush()?;
            }
            Some("EXIT") | None => return Ok(()),
            Some("TIME") => {
                let nums: Vec<&str> = parts.collect();
                let reply = parse_time_command(&nums)
                    .map(|t| format!("TIME {t}"))
                    .unwrap_or_else(|| "ERR bad TIME".to_string());
                writeln!(output, "{reply}")?;
                output.flush()?;
            }
            Some("GEMM") => {
                let dims: Vec<usize> = parts.filter_map(|p| p.parse().ok()).collect();
                if dims.len() != 3 {
                    writeln!(output, "ERR bad GEMM")?;
                    output.flush()?;
                    continue;
                }
                let (m, n, k) = (dims[0], dims[1], dims[2]);
                let a = read_i32s(input, m * k)?;
                let b = read_i32s(input, k * n)?;
                let c = threaded_gemm(m, n, k, &a, &b);
                writeln!(output, "DONE")?;
                write_i32s(output, &c)?;
                output.flush()?;
            }
            Some(other) => {
                writeln!(output, "ERR unknown command {other}")?;
                output.flush()?;
            }
        }
    }
}

fn parse_time_command(nums: &[&str]) -> Option<Tick> {
    if nums.len() != 7 {
        return None;
    }
    let tiles: u32 = nums[0].parse().ok()?;
    let k_chunk: u32 = nums[1].parse().ok()?;
    let k_total: u32 = nums[2].parse().ok()?;
    let rows: u32 = nums[3].parse().ok()?;
    let cols: u32 = nums[4].parse().ok()?;
    let freq_ghz: f64 = nums[5].parse().ok()?;
    let compute_override_ns = if nums[6] == "-" {
        None
    } else {
        Some(nums[6].parse().ok()?)
    };
    let array = SystolicArray::new(SystolicConfig {
        rows,
        cols,
        freq_ghz,
        compute_override_ns,
    });
    Some(array.block_time(tiles, k_chunk, k_total))
}

/// Row-partitioned multi-threaded i32 GEMM (the child's compute kernel).
fn threaded_gemm(m: usize, n: usize, k: usize, a: &[i32], b: &[i32]) -> Vec<i32> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(4)
        .min(m.max(1));
    let rows_per = m.div_ceil(threads.max(1));
    let mut c = vec![0i32; m * n];
    std::thread::scope(|scope| {
        for (t, chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let row0 = t * rows_per;
            scope.spawn(move || {
                for (local_i, crow) in chunk.chunks_mut(n).enumerate() {
                    let i = row0 + local_i;
                    for kk in 0..k {
                        let av = a[i * k + kk];
                        if av == 0 {
                            continue;
                        }
                        let brow = &b[kk * n..(kk + 1) * n];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv = cv.wrapping_add(av.wrapping_mul(*bv));
                        }
                    }
                }
            });
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Drive the protocol fully in-memory (no process spawn needed).
    fn roundtrip(script: &[u8]) -> Vec<u8> {
        let mut input = Cursor::new(script.to_vec());
        let mut output = Vec::new();
        serve_worker(&mut input, &mut output).expect("serve failed");
        output
    }

    #[test]
    fn ping_pong_and_exit() {
        let out = roundtrip(b"PING\nEXIT\n");
        assert_eq!(out, b"PONG\n");
    }

    #[test]
    fn eof_terminates_cleanly() {
        let out = roundtrip(b"");
        assert!(out.is_empty());
    }

    #[test]
    fn time_matches_in_process_model() {
        let out = roundtrip(b"TIME 64 256 1024 16 16 1 -\nEXIT\n");
        let text = String::from_utf8(out).unwrap();
        let array = SystolicArray::new(SystolicConfig::default());
        let expect = array.block_time(64, 256, 1024);
        assert_eq!(text.trim(), format!("TIME {expect}"));
    }

    #[test]
    fn time_honors_override() {
        let out = roundtrip(b"TIME 1 512 1024 16 16 1 1500\nEXIT\n");
        let text = String::from_utf8(out).unwrap();
        let array = SystolicArray::new(SystolicConfig {
            compute_override_ns: Some(1500.0),
            ..SystolicConfig::default()
        });
        assert_eq!(
            text.trim(),
            format!("TIME {}", array.block_time(1, 512, 1024))
        );
    }

    #[test]
    fn malformed_commands_get_err_replies() {
        let out = roundtrip(b"TIME 1 2\nFROB\nEXIT\n");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("ERR"));
        assert!(lines[1].starts_with("ERR"));
    }

    #[test]
    fn gemm_command_computes_the_product() {
        let (m, n, k) = (3usize, 2usize, 4usize);
        let a: Vec<i32> = (0..m * k).map(|x| x as i32 - 5).collect();
        let b: Vec<i32> = (0..k * n).map(|x| (x * 7) as i32 % 9 - 4).collect();
        let mut script = format!("GEMM {m} {n} {k}\n").into_bytes();
        for v in a.iter().chain(&b) {
            script.extend_from_slice(&v.to_le_bytes());
        }
        script.extend_from_slice(b"EXIT\n");
        let out = roundtrip(&script);
        assert!(out.starts_with(b"DONE\n"));
        let c_bytes = &out[b"DONE\n".len()..];
        let c: Vec<i32> = c_bytes
            .chunks_exact(4)
            .map(|x| i32::from_le_bytes([x[0], x[1], x[2], x[3]]))
            .collect();
        let golden = GemmOperands::new(m, n, k, a, b).golden();
        assert_eq!(c, golden);
    }

    #[test]
    fn threaded_gemm_matches_reference_at_odd_sizes() {
        for (m, n, k) in [(1, 1, 1), (5, 3, 2), (17, 9, 33), (64, 64, 64)] {
            let a: Vec<i32> = (0..m * k).map(|x| (x % 23) as i32 - 11).collect();
            let b: Vec<i32> = (0..k * n).map(|x| (x % 17) as i32 - 8).collect();
            let got = threaded_gemm(m, n, k, &a, &b);
            let golden = GemmOperands::new(m, n, k, a, b).golden();
            assert_eq!(got, golden, "({m},{n},{k})");
        }
    }

    #[test]
    fn backend_in_process_delegates_to_the_array() {
        let cfg = SystolicConfig::default();
        let mut backend = ComputeBackend::InProcess(SystolicArray::new(cfg));
        let direct = SystolicArray::new(cfg).block_time(8, 128, 256);
        assert_eq!(backend.block_time(cfg, 8, 128, 256), direct);
    }
}
