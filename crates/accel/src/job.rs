//! Accelerator job descriptors and the functional GEMM backend.

use accesys_sim::ModuleId;
use std::sync::{Arc, Mutex};

/// Functional operands of a GEMM job.
///
/// The paper attaches the RTL accelerator as a Verilator child process so
/// results are real; our substitution is a functional i32 backend behind
/// the same controller, letting tests verify numerical correctness while
/// the timing path stays packet-level.
#[derive(Debug)]
pub struct GemmOperands {
    m: usize,
    n: usize,
    k: usize,
    a: Vec<i32>,
    b: Vec<i32>,
    c: Mutex<Option<Vec<i32>>>,
}

impl GemmOperands {
    /// Wrap row-major `a` (`m×k`) and `b` (`k×n`).
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the dimensions.
    pub fn new(m: usize, n: usize, k: usize, a: Vec<i32>, b: Vec<i32>) -> Self {
        assert_eq!(a.len(), m * k, "A must be m×k");
        assert_eq!(b.len(), k * n, "B must be k×n");
        GemmOperands {
            m,
            n,
            k,
            a,
            b,
            c: Mutex::new(None),
        }
    }

    /// Dimensions `(m, n, k)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.k)
    }

    /// The `m×k` A operand, row-major.
    pub fn a(&self) -> &[i32] {
        &self.a
    }

    /// The `k×n` B operand, row-major.
    pub fn b(&self) -> &[i32] {
        &self.b
    }

    /// Store an externally computed result (used by the child-process
    /// backend, which runs the GEMM in the worker).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not `m×n`.
    pub fn set_result(&self, c: Vec<i32>) {
        assert_eq!(c.len(), self.m * self.n, "C must be m×n");
        *self.c.lock().expect("operand lock poisoned") = Some(c);
    }

    /// Compute and store `C = A×B` (called by the controller when the
    /// simulated job completes).
    pub fn execute(&self) {
        let mut c = vec![0i32; self.m * self.n];
        for i in 0..self.m {
            for kk in 0..self.k {
                let a = self.a[i * self.k + kk];
                if a == 0 {
                    continue;
                }
                let brow = &self.b[kk * self.n..(kk + 1) * self.n];
                let crow = &mut c[i * self.n..(i + 1) * self.n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv = cv.wrapping_add(a.wrapping_mul(*bv));
                }
            }
        }
        *self.c.lock().expect("operand lock poisoned") = Some(c);
    }

    /// The result matrix, if the job has executed.
    pub fn result(&self) -> Option<Vec<i32>> {
        self.c.lock().expect("operand lock poisoned").clone()
    }

    /// Reference result computed independently (for tests).
    pub fn golden(&self) -> Vec<i32> {
        let mut c = vec![0i32; self.m * self.n];
        for i in 0..self.m {
            for j in 0..self.n {
                let mut acc = 0i32;
                for kk in 0..self.k {
                    acc = acc.wrapping_add(
                        self.a[i * self.k + kk].wrapping_mul(self.b[kk * self.n + j]),
                    );
                }
                c[i * self.n + j] = acc;
            }
        }
        c
    }
}

/// One GEMM job submitted to the [`crate::AccelController`].
#[derive(Clone, Debug)]
pub struct AccelJob {
    /// Output rows.
    pub m: u32,
    /// Output columns.
    pub n: u32,
    /// Reduction depth.
    pub k: u32,
    /// Element size in bytes (MatrixFlow uses 4-byte integers).
    pub dtype_bytes: u32,
    /// Base address of A (pre-tiled panel layout).
    pub a_addr: u64,
    /// Base address of B (pre-tiled panel layout).
    pub b_addr: u64,
    /// Base address of C.
    pub c_addr: u64,
    /// Addresses are in the accelerator's virtual space (SMMU translates).
    pub virt: bool,
    /// Where DMA requests go: the PCIe endpoint (host memory) or the
    /// DevMem controller (device-side memory).
    pub data_target: ModuleId,
    /// Host address the completion MSI is written to.
    pub msi_addr: u64,
    /// Job cookie echoed in the MSI address (`msi_addr + 4*cookie`).
    pub cookie: u64,
    /// Optional functional backend executed at completion.
    pub functional: Option<Arc<GemmOperands>>,
}

impl AccelJob {
    /// Total bytes of A, B and C.
    pub fn footprint_bytes(&self) -> u64 {
        let d = u64::from(self.dtype_bytes);
        d * (u64::from(self.m) * u64::from(self.k)
            + u64::from(self.k) * u64::from(self.n)
            + u64::from(self.m) * u64::from(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_matches_golden() {
        let m = 5;
        let n = 7;
        let k = 3;
        let a: Vec<i32> = (0..m * k).map(|x| x as i32 - 4).collect();
        let b: Vec<i32> = (0..k * n).map(|x| (x * 3) as i32 % 11 - 5).collect();
        let ops = GemmOperands::new(m, n, k, a, b);
        assert!(ops.result().is_none());
        ops.execute();
        assert_eq!(ops.result().unwrap(), ops.golden());
    }

    #[test]
    fn identity_multiplication() {
        let n = 4;
        let mut eye = vec![0i32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1;
        }
        let b: Vec<i32> = (0..n * n).map(|x| x as i32).collect();
        let ops = GemmOperands::new(n, n, n, eye, b.clone());
        ops.execute();
        assert_eq!(ops.result().unwrap(), b);
    }

    #[test]
    fn footprint_counts_all_three_matrices() {
        let job = AccelJob {
            m: 64,
            n: 64,
            k: 64,
            dtype_bytes: 4,
            a_addr: 0,
            b_addr: 0,
            c_addr: 0,
            virt: false,
            data_target: ModuleId::INVALID,
            msi_addr: 0,
            cookie: 0,
            functional: None,
        };
        // Table IV: 64 → 48 KiB = 12 pages.
        assert_eq!(job.footprint_bytes(), 3 * 64 * 64 * 4);
        assert_eq!(job.footprint_bytes() / 4096, 12);
    }

    #[test]
    #[should_panic(expected = "A must be m×k")]
    fn wrong_operand_shape_panics() {
        GemmOperands::new(4, 4, 4, vec![0; 15], vec![0; 16]);
    }
}
