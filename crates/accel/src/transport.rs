//! Deadline-guarded pipe transport under every child-process protocol.
//!
//! [`ChildWorker`](crate::worker::ChildWorker) (the accelerator process
//! model) and the fleet layer's host workers both speak newline-framed
//! commands plus raw byte blocks over a child's stdin/stdout. The naive
//! way to read those pipes — a blocking `read_line` — hangs the whole
//! simulation if the child dies without closing its pipe or simply stops
//! answering. [`PipeChild`] is the shared fix: every read first waits
//! for the pipe to become readable (bounded slices, `poll(2)` on
//! Linux), checks child liveness between slices, and gives up with a
//! typed [`TransportError`] once a configurable deadline passes.
//! Dropping the handle never leaks a process: the child gets a short
//! grace to exit on its own, then is killed and reaped.
//!
//! On non-Linux targets there is no portable readiness probe without a
//! dependency, so reads degrade to the old blocking behavior after a
//! liveness check — an already-dead child is still detected, a wedged
//! live one is not.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// How a pipe conversation with a child process failed.
#[derive(Debug)]
pub enum TransportError {
    /// The pipe itself failed (spawn, write, or read error).
    Io(std::io::Error),
    /// The child exited or closed its pipe mid-conversation; carries
    /// the exit code when the child was already reapable.
    Died {
        /// Exit code, if the child had already terminated normally.
        status: Option<i32>,
    },
    /// The child stayed alive but sent nothing for the whole read
    /// deadline.
    Timeout {
        /// How long the reader waited before giving up.
        waited: Duration,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "child pipe i/o failed: {e}"),
            TransportError::Died { status: Some(c) } => {
                write!(f, "child process died mid-conversation (exit code {c})")
            }
            TransportError::Died { status: None } => {
                write!(f, "child process died or closed its pipe mid-conversation")
            }
            TransportError::Timeout { waited } => {
                write!(
                    f,
                    "child process sent nothing for {:.1}s (read deadline)",
                    waited.as_secs_f64()
                )
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A spawned child process with deadline-guarded pipe I/O.
///
/// Protocol layers own one of these and frame their own commands over
/// [`PipeChild::send_line`] / [`PipeChild::read_line`] plus raw blocks
/// via [`PipeChild::write_all`] / [`PipeChild::read_exact`].
#[derive(Debug)]
pub struct PipeChild {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    deadline: Duration,
}

/// Readiness-poll slice: liveness is re-checked this often while a
/// read waits for data.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Grace given to a child to exit on its own at drop before it is
/// killed.
const DROP_GRACE: Duration = Duration::from_millis(500);

impl PipeChild {
    /// Default read deadline ([`PipeChild::set_read_deadline`] to
    /// change): generous enough for any in-tree request, small enough
    /// that a wedged child cannot hang a sweep forever.
    pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(120);

    /// Spawn `path` with piped stdin/stdout.
    ///
    /// # Errors
    ///
    /// Returns the spawn error (missing binary, exec failure).
    pub fn spawn(path: &std::path::Path) -> std::io::Result<PipeChild> {
        let mut child = Command::new(path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        Ok(PipeChild {
            child,
            stdin,
            stdout,
            deadline: Self::DEFAULT_READ_DEADLINE,
        })
    }

    /// Change the per-read deadline (a whole `read_line`/`read_exact`
    /// call must finish within it).
    pub fn set_read_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline.max(Duration::from_millis(1));
    }

    /// Whether the child is still running (a reaped child is gone).
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    fn died(&mut self) -> TransportError {
        let status = match self.child.try_wait() {
            Ok(Some(status)) => status.code(),
            _ => None,
        };
        TransportError::Died { status }
    }

    /// Send one newline-terminated command line.
    ///
    /// # Errors
    ///
    /// A broken pipe is reported as [`TransportError::Died`] (the child
    /// is gone), anything else as [`TransportError::Io`].
    pub fn send_line(&mut self, line: &str) -> Result<(), TransportError> {
        self.write_all(line.as_bytes())?;
        self.write_all(b"\n")?;
        self.flush()
    }

    /// Write a raw byte block to the child's stdin.
    ///
    /// # Errors
    ///
    /// Same mapping as [`PipeChild::send_line`].
    pub fn write_all(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.stdin.write_all(bytes).map_err(|e| self.write_err(e))
    }

    /// Flush the child's stdin.
    ///
    /// # Errors
    ///
    /// Same mapping as [`PipeChild::send_line`].
    pub fn flush(&mut self) -> Result<(), TransportError> {
        self.stdin.flush().map_err(|e| self.write_err(e))
    }

    fn write_err(&mut self, e: std::io::Error) -> TransportError {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            self.died()
        } else {
            TransportError::Io(e)
        }
    }

    /// Read one line (without the trailing newline), under the read
    /// deadline.
    ///
    /// # Errors
    ///
    /// [`TransportError::Died`] on EOF or a dead child,
    /// [`TransportError::Timeout`] when the deadline passes with the
    /// child still alive, [`TransportError::Io`] for pipe errors.
    pub fn read_line(&mut self) -> Result<String, TransportError> {
        let start = Instant::now();
        let mut line: Vec<u8> = Vec::new();
        loop {
            if self.stdout.buffer().is_empty() {
                self.wait_readable(start)?;
            }
            let available = self.stdout.fill_buf()?;
            if available.is_empty() {
                return Err(self.died()); // EOF
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&available[..pos]);
                    self.stdout.consume(pos + 1);
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|e| TransportError::Io(std::io::Error::other(e)));
                }
                None => {
                    let n = available.len();
                    line.extend_from_slice(available);
                    self.stdout.consume(n);
                }
            }
        }
    }

    /// Fill `out` exactly from the child's stdout, under the read
    /// deadline.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`PipeChild::read_line`]; EOF mid-block (a
    /// truncated block from a dying child) is [`TransportError::Died`].
    pub fn read_exact(&mut self, out: &mut [u8]) -> Result<(), TransportError> {
        let start = Instant::now();
        let mut filled = 0usize;
        while filled < out.len() {
            if self.stdout.buffer().is_empty() {
                self.wait_readable(start)?;
            }
            let available = self.stdout.fill_buf()?;
            if available.is_empty() {
                return Err(self.died()); // EOF mid-block
            }
            let n = available.len().min(out.len() - filled);
            out[filled..filled + n].copy_from_slice(&available[..n]);
            self.stdout.consume(n);
            filled += n;
        }
        Ok(())
    }

    /// Wait (in liveness-checked slices) until the pipe is readable.
    /// Data a dead child left behind still polls readable, so death is
    /// only reported when the pipe is drained *and* the child is gone.
    #[cfg(target_os = "linux")]
    fn wait_readable(&mut self, start: Instant) -> Result<(), TransportError> {
        use std::os::unix::io::AsRawFd;
        let fd = self.stdout.get_ref().as_raw_fd();
        loop {
            if poll_readable(fd, POLL_SLICE)? {
                return Ok(());
            }
            if let Ok(Some(status)) = self.child.try_wait() {
                return Err(TransportError::Died {
                    status: status.code(),
                });
            }
            let waited = start.elapsed();
            if waited >= self.deadline {
                return Err(TransportError::Timeout { waited });
            }
        }
    }

    /// Fallback without a readiness probe: one liveness check, then let
    /// the caller block (pre-deadline behavior, minus the dead-child
    /// hang).
    #[cfg(not(target_os = "linux"))]
    fn wait_readable(&mut self, _start: Instant) -> Result<(), TransportError> {
        if let Ok(Some(status)) = self.child.try_wait() {
            return Err(TransportError::Died {
                status: status.code(),
            });
        }
        Ok(())
    }
}

impl Drop for PipeChild {
    fn drop(&mut self) {
        // Protocol layers say their goodbyes (EXIT) before this runs;
        // here we only guarantee the process cannot outlive its handle:
        // a cooperative child gets a short grace to exit on its own, an
        // uncooperative (or wedged) one is killed and reaped.
        let _ = self.stdin.flush();
        let start = Instant::now();
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if start.elapsed() < DROP_GRACE => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// `poll(2)` the fd for readability for up to `timeout`.
#[cfg(target_os = "linux")]
fn poll_readable(fd: i32, timeout: Duration) -> std::io::Result<bool> {
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }
    const POLLIN: i16 = 0x001;
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }
    let mut p = PollFd {
        fd,
        events: POLLIN,
        revents: 0,
    };
    let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    loop {
        let rc = unsafe { poll(&mut p, 1, timeout_ms) };
        if rc < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            return Err(e);
        }
        return Ok(rc > 0);
    }
}
