//! Systolic-array timing model (MatrixFlow).

use accesys_sim::{units, Tick};

/// Configuration of a [`SystolicArray`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SystolicConfig {
    /// Rows of MAC units (MatrixFlow: 16).
    pub rows: u32,
    /// Columns of MAC units (MatrixFlow: 16).
    pub cols: u32,
    /// Array clock in GHz.
    pub freq_ghz: f64,
    /// When set, overrides the per-output-tile compute time (for a full
    /// `k` reduction) in nanoseconds — the knob swept by the paper's
    /// roofline study (Fig. 2).
    pub compute_override_ns: Option<f64>,
}

impl Default for SystolicConfig {
    fn default() -> Self {
        SystolicConfig {
            rows: 16,
            cols: 16,
            freq_ghz: 1.0,
            compute_override_ns: None,
        }
    }
}

/// Timing model of an output-stationary systolic array.
///
/// A `rows × cols` output tile accumulates over `k` in `k + rows + cols`
/// cycles (stream plus pipeline fill/drain).
///
/// ```
/// use accesys_accel::{SystolicArray, SystolicConfig};
///
/// let array = SystolicArray::new(SystolicConfig::default());
/// // 1 GHz, k=256: (256 + 32) cycles = 288 ns.
/// assert_eq!(array.tile_time(256, 256), accesys_sim::units::ns(288.0));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct SystolicArray {
    cfg: SystolicConfig,
}

impl SystolicArray {
    /// Create an array from its configuration.
    pub fn new(cfg: SystolicConfig) -> Self {
        assert!(cfg.rows > 0 && cfg.cols > 0 && cfg.freq_ghz > 0.0);
        SystolicArray { cfg }
    }

    /// The configuration of this array.
    pub fn config(&self) -> SystolicConfig {
        self.cfg
    }

    /// Time to accumulate one output tile over a `k_chunk` of the full
    /// `k_total` reduction.
    ///
    /// With a compute override of `T` ns per full-`k` tile, a chunk costs
    /// `T * k_chunk / k_total` so the job's total compute time stays `T`
    /// per tile regardless of chunking.
    pub fn tile_time(&self, k_chunk: u32, k_total: u32) -> Tick {
        debug_assert!(k_chunk > 0 && k_total >= k_chunk);
        if let Some(t) = self.cfg.compute_override_ns {
            return units::ns(t * f64::from(k_chunk) / f64::from(k_total));
        }
        let cycles = u64::from(k_chunk + self.cfg.rows + self.cfg.cols);
        cycles * units::clock_period_ghz(self.cfg.freq_ghz)
    }

    /// Time to compute a block of `tiles` output tiles over one k-chunk.
    pub fn block_time(&self, tiles: u32, k_chunk: u32, k_total: u32) -> Tick {
        u64::from(tiles) * self.tile_time(k_chunk, k_total)
    }

    /// Peak multiply–accumulates per second.
    pub fn peak_macs_per_sec(&self) -> f64 {
        f64::from(self.cfg.rows) * f64::from(self.cfg.cols) * self.cfg.freq_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_time_is_stream_plus_fill() {
        let a = SystolicArray::new(SystolicConfig::default());
        assert_eq!(a.tile_time(1024, 1024), units::ns(1056.0));
        // Half the k at 2 GHz.
        let fast = SystolicArray::new(SystolicConfig {
            freq_ghz: 2.0,
            ..SystolicConfig::default()
        });
        assert_eq!(fast.tile_time(512, 512), units::ns(272.0));
    }

    #[test]
    fn override_scales_with_chunk_fraction() {
        let a = SystolicArray::new(SystolicConfig {
            compute_override_ns: Some(1500.0),
            ..SystolicConfig::default()
        });
        assert_eq!(a.tile_time(1024, 1024), units::ns(1500.0));
        assert_eq!(a.tile_time(256, 1024), units::ns(375.0));
        // Four chunks add up to the full override.
        assert_eq!(4 * a.tile_time(256, 1024), a.tile_time(1024, 1024));
    }

    #[test]
    fn peak_rate_matches_dimensions() {
        let a = SystolicArray::new(SystolicConfig::default());
        assert_eq!(a.peak_macs_per_sec(), 256e9);
    }

    #[test]
    fn block_time_is_linear_in_tiles() {
        let a = SystolicArray::new(SystolicConfig::default());
        assert_eq!(a.block_time(64, 256, 1024), 64 * a.tile_time(256, 1024));
    }
}
