//! Regression tests for the child-worker failure paths: a worker that
//! dies, truncates a block, answers garbage, or stops answering must
//! surface as a typed [`WorkerError`] — never hang the simulation —
//! and a wedged child must not outlive its [`ChildWorker`] handle.
//!
//! The misbehaving workers are tiny `/bin/sh` scripts (unix-only): each
//! completes the PING handshake, then fails in its own way.

#![cfg(unix)]

use accesys_accel::{ChildWorker, GemmOperands, SystolicConfig, WorkerError};
use std::os::unix::fs::PermissionsExt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Write an executable `/bin/sh` script that plays a worker.
fn fake_worker(name: &str, body: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("accesys-fake-worker-{name}-{}", std::process::id()));
    std::fs::write(&path, format!("#!/bin/sh\n{body}\n")).expect("write fake worker");
    let mut perm = std::fs::metadata(&path)
        .expect("stat fake worker")
        .permissions();
    perm.set_mode(0o755);
    std::fs::set_permissions(&path, perm).expect("chmod fake worker");
    path
}

fn small_ops() -> GemmOperands {
    let (m, n, k) = (2usize, 2usize, 2usize);
    let a: Vec<i32> = (0..m * k).map(|x| x as i32).collect();
    let b: Vec<i32> = (0..k * n).map(|x| x as i32 - 1).collect();
    GemmOperands::new(m, n, k, a, b)
}

#[test]
fn child_dying_mid_gemm_is_a_typed_error_not_a_hang() {
    let path = fake_worker("dies", "read l; echo PONG; read l; exit 7");
    let mut worker = ChildWorker::spawn(&path).expect("handshake completes");
    let start = Instant::now();
    let err = worker.run_gemm(&small_ops()).expect_err("child died");
    assert!(
        matches!(err, WorkerError::Died(_)),
        "want Died, got {err:?} ({err})"
    );
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "death detection must not wait out the read deadline"
    );
}

#[test]
fn truncated_result_block_is_a_typed_error() {
    // Replies DONE but ships 4 of the 16 result bytes, then exits.
    let path = fake_worker(
        "truncates",
        "read l; echo PONG; read l; echo DONE; printf 'aaaa'; exit 0",
    );
    let mut worker = ChildWorker::spawn(&path).expect("handshake completes");
    let err = worker.run_gemm(&small_ops()).expect_err("block truncated");
    assert!(
        matches!(err, WorkerError::Died(_)),
        "want Died (EOF mid-block), got {err:?} ({err})"
    );
}

#[test]
fn garbage_reply_is_a_protocol_error() {
    let path = fake_worker(
        "garbage",
        "read l; echo PONG; read l; echo BANANAS; cat >/dev/null",
    );
    let mut worker = ChildWorker::spawn(&path).expect("handshake completes");
    let err = worker
        .block_time(SystolicConfig::default(), 1, 16, 16)
        .expect_err("garbage reply");
    match err {
        WorkerError::Protocol(line) => assert_eq!(line, "BANANAS"),
        other => panic!("want Protocol, got {other:?} ({other})"),
    }
}

#[test]
fn unresponsive_child_times_out_instead_of_hanging() {
    let path = fake_worker("wedged", "read l; echo PONG; while :; do sleep 1; done");
    let mut worker = ChildWorker::spawn(&path).expect("handshake completes");
    worker.set_read_deadline(Duration::from_millis(150));
    let start = Instant::now();
    let err = worker
        .block_time(SystolicConfig::default(), 1, 16, 16)
        .expect_err("child never answers");
    assert!(
        matches!(err, WorkerError::Timeout(_)),
        "want Timeout, got {err:?} ({err})"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "deadline of 150ms must not stretch to {:?}",
        start.elapsed()
    );
    // The wedged child ignores EXIT; drop must kill it rather than
    // blocking on wait() until its infinite loop ends.
    let dropped = Instant::now();
    drop(worker);
    assert!(
        dropped.elapsed() < Duration::from_secs(10),
        "drop must kill a child that ignores EXIT, took {:?}",
        dropped.elapsed()
    );
}

#[test]
fn drop_kills_a_child_that_ignores_exit() {
    // After PONG the child becomes `sleep 600`: it never reads EXIT and
    // never exits on its own inside the drop grace.
    let path = fake_worker("sleeper", "read l; echo PONG; exec sleep 600");
    let worker = ChildWorker::spawn(&path).expect("handshake completes");
    let start = Instant::now();
    drop(worker);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drop must not wait for sleep 600, took {:?}",
        start.elapsed()
    );
}
