//! End-to-end tests of the child-process accelerator model: a real
//! `matrixflow-worker` process is spawned and driven over pipes.

use accesys_accel::{
    AccelController, AccelControllerConfig, AccelJob, ChildWorker, GemmOperands, SystolicArray,
    SystolicConfig,
};
use accesys_dma::{DmaEngine, DmaEngineConfig};
use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
use accesys_sim::{Ctx, Kernel, MemCmd, Module, ModuleId, Msg, Packet};
use std::path::Path;

fn worker_path() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_matrixflow-worker"))
}

#[test]
fn worker_answers_ping_on_spawn() {
    // `spawn` itself performs the PING handshake.
    let worker = ChildWorker::spawn(worker_path()).expect("spawn worker");
    assert_eq!(worker.time_queries(), 0);
}

#[test]
fn child_timing_matches_in_process_model_exactly() {
    let mut worker = ChildWorker::spawn(worker_path()).expect("spawn worker");
    let cfg = SystolicConfig::default();
    let array = SystolicArray::new(cfg);
    for (tiles, kc, kt) in [(1, 16, 16), (64, 256, 1024), (7, 48, 197)] {
        let remote = worker.block_time(cfg, tiles, kc, kt).expect("TIME");
        assert_eq!(remote, array.block_time(tiles, kc, kt));
    }
    assert_eq!(worker.time_queries(), 3);
}

#[test]
fn child_timing_honors_roofline_override() {
    let mut worker = ChildWorker::spawn(worker_path()).expect("spawn worker");
    let cfg = SystolicConfig {
        compute_override_ns: Some(1500.0),
        ..SystolicConfig::default()
    };
    let remote = worker.block_time(cfg, 1, 256, 1024).expect("TIME");
    assert_eq!(remote, SystolicArray::new(cfg).block_time(1, 256, 1024));
}

#[test]
fn child_gemm_matches_golden() {
    let mut worker = ChildWorker::spawn(worker_path()).expect("spawn worker");
    let (m, n, k) = (33, 21, 47);
    let a: Vec<i32> = (0..m * k).map(|x| (x % 19) as i32 - 9).collect();
    let b: Vec<i32> = (0..k * n).map(|x| (x % 13) as i32 - 6).collect();
    let ops = GemmOperands::new(m, n, k, a, b);
    worker.run_gemm(&ops).expect("GEMM");
    assert_eq!(ops.result().expect("child stored result"), ops.golden());
    assert_eq!(worker.gemms(), 1);
}

#[test]
fn one_worker_serves_many_sequential_jobs() {
    let mut worker = ChildWorker::spawn(worker_path()).expect("spawn worker");
    for size in [4usize, 16, 32] {
        let a: Vec<i32> = (0..size * size).map(|x| x as i32 % 5 - 2).collect();
        let b = a.clone();
        let ops = GemmOperands::new(size, size, size, a, b);
        worker.run_gemm(&ops).expect("GEMM");
        assert_eq!(ops.result().unwrap(), ops.golden());
    }
    assert_eq!(worker.gemms(), 3);
}

/// Captures MSI writes (stands in for the PCIe EP + host path).
struct MsiCatcher {
    got: u32,
}
impl Module for MsiCatcher {
    fn name(&self) -> &str {
        "msi"
    }
    fn handle(&mut self, msg: Msg, _ctx: &mut Ctx) {
        if let Msg::Packet(p) = msg {
            if p.cmd == MemCmd::WriteReq {
                self.got += 1;
            }
        }
    }
}

/// Run one GEMM through a full controller + DMA + memory rig with the
/// given process model; returns (finish tick, functional pass).
fn run_rig(child: bool) -> (u64, bool) {
    let mut k = Kernel::new();
    let mem = k.add_module(Box::new(SimpleMemory::new(
        "mem",
        SimpleMemoryConfig {
            latency_ns: 30.0,
            bandwidth_gbps: 8.0,
        },
    )));
    let dma = k.add_module(Box::new(DmaEngine::new(
        "dma",
        DmaEngineConfig {
            channels: 4,
            request_bytes: 256,
            max_inflight: 16,
            desc_latency_ns: 10.0,
        },
    )));
    let msi = k.add_module(Box::new(MsiCatcher { got: 0 }));
    let mut ctrl_mod = AccelController::new("ctrl", AccelControllerConfig::default(), dma, msi);
    if child {
        let worker = ChildWorker::spawn(worker_path()).expect("spawn worker");
        ctrl_mod = ctrl_mod.with_child_worker(worker);
        assert_eq!(ctrl_mod.process_model(), "child");
    } else {
        assert_eq!(ctrl_mod.process_model(), "in-process");
    }
    let ctrl = k.add_module(Box::new(ctrl_mod));

    let (m, n, kk) = (96usize, 80usize, 64usize);
    let a: Vec<i32> = (0..m * kk).map(|x| (x % 11) as i32 - 5).collect();
    let b: Vec<i32> = (0..kk * n).map(|x| (x % 9) as i32 - 4).collect();
    let ops = std::sync::Arc::new(GemmOperands::new(m, n, kk, a, b));
    let job = AccelJob {
        m: m as u32,
        n: n as u32,
        k: kk as u32,
        dtype_bytes: 4,
        a_addr: 0x100_0000,
        b_addr: 0x200_0000,
        c_addr: 0x300_0000,
        virt: false,
        data_target: mem,
        msi_addr: 0xFEE0_0000,
        cookie: 0,
        functional: Some(ops.clone()),
    };
    k.module_mut::<AccelController>(ctrl)
        .unwrap()
        .enqueue_job(job);
    let db = Packet::request(9000, MemCmd::WriteReq, 0x1_0000_0000, 8, 0);
    k.schedule(0, ctrl, Msg::packet(db));
    let end = k.run_until_idle().unwrap();
    let _ = ModuleId::INVALID; // silence unused import on some cfgs
    let passed = ops.result().map(|r| r == ops.golden()).unwrap_or(false);
    (end, passed)
}

#[test]
fn full_rig_child_process_model_is_cycle_identical_to_in_process() {
    let (t_in, ok_in) = run_rig(false);
    let (t_child, ok_child) = run_rig(true);
    assert!(ok_in, "in-process functional result wrong");
    assert!(ok_child, "child functional result wrong");
    // The process model must not perturb simulated time.
    assert_eq!(t_in, t_child);
}
