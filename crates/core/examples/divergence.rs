//! Event-order divergence probe for the parallel kernel.
//!
//! The conservative domain engine promises that a parallel run delivers
//! exactly the same events, in exactly the same `(tick, seq)` order, as
//! the sequential kernel (ARCHITECTURE.md §1). When that contract is
//! broken — say, while hacking on the merge — byte-diffing two stats
//! reports tells you *that* the runs diverged, not *where*. This
//! example answers "where": it records the delivery stream of a
//! sequential and a 2-thread run via `Kernel::enable_order_probe` and
//! prints the first index at which they disagree, with a few events of
//! context around it (tick, sequence number, destination module name).
//!
//! Run: `cargo run --release --example divergence`
//! Healthy output: `streams identical over common prefix` with equal
//! event counts.

use accesys::{Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

fn run(threads: u32) -> (Vec<(u64, u64, u32)>, Vec<String>) {
    let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    cfg.kernel_threads = threads;
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.kernel_mut().enable_order_probe();
    sim.run_gemm(GemmSpec::square(96)).expect("gemm completes");
    let names: Vec<String> = (0..sim.kernel().module_count())
        .map(|i| sim.kernel().module_name_of(i).to_string())
        .collect();
    (sim.kernel_mut().take_order_probe(), names)
}

fn main() {
    let (a, names) = run(1);
    let (b, _) = run(2);
    println!("seq events: {}  par events: {}", a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            println!("first mismatch at index {i}:");
            for j in i.saturating_sub(6)..(i + 6).min(a.len()).min(b.len()) {
                let (wa, sa, ma) = a[j];
                let (wb, sb, mb) = b[j];
                println!(
                    "  [{j}] seq: t={wa} s={sa} {}   par: t={wb} s={sb} {}",
                    names[ma as usize], names[mb as usize]
                );
            }
            std::process::exit(1);
        }
    }
    if a.len() != b.len() {
        println!("stream lengths differ");
        std::process::exit(1);
    }
    println!("streams identical over common prefix");
}
