//! The fixed physical/virtual address map of the simulated system.

use accesys_interconnect::AddrRange;

/// Host DRAM: 4 GiB at physical 0 (Table II).
pub const HOST_DRAM: AddrRange = AddrRange {
    base: 0,
    size: 4 << 30,
};

/// Physical base of the accelerator data window inside host DRAM (the
/// SMMU's linear mapping target).
pub const DATA_PA_BASE: u64 = 0x1000_0000;

/// Physical base of the activation window used by CPU-side Non-GEMM
/// operators when data lives in host memory.
pub const HOST_ACT_BASE: u64 = 0xA000_0000;

/// Page tables live here in host DRAM.
pub const PT_BASE: u64 = 0xE000_0000;

/// MSI window: device writes here are interrupts delivered to the CPU.
pub const MSI: AddrRange = AddrRange {
    base: 0xFEE0_0000,
    size: 0x1000,
};

/// The accelerator's PCIe BAR (MMIO registers, doorbell at offset 0).
pub const DEVICE_BAR: AddrRange = AddrRange {
    base: 0x10_0000_0000,
    size: 0x1000_0000,
};

/// Doorbell register address.
pub const DOORBELL: u64 = DEVICE_BAR.base;

/// Maximum accelerators behind the switch (BAR window carving).
pub const MAX_ACCELS: usize = 16;

/// Per-device BAR stride inside [`DEVICE_BAR`].
pub const BAR_STRIDE: u64 = DEVICE_BAR.size / MAX_ACCELS as u64;

/// The BAR window of accelerator `i` (an accelerator-cluster member).
///
/// # Panics
///
/// Panics if `i >= MAX_ACCELS`.
pub fn device_bar(i: usize) -> AddrRange {
    assert!(i < MAX_ACCELS, "accelerator index {i} out of range");
    AddrRange {
        base: DEVICE_BAR.base + i as u64 * BAR_STRIDE,
        size: BAR_STRIDE,
    }
}

/// Doorbell register address of accelerator `i`.
pub fn doorbell(i: usize) -> u64 {
    device_bar(i).base
}

/// Check an accelerator/endpoint count against the BAR window carving.
///
/// The single source of the `1..=`[`MAX_ACCELS`] bound and its error
/// text: [`crate::SystemConfig::validate`] and the topology lowering
/// both call this, so a flat cluster and a deep switch tree with too
/// many endpoints fail with the same message.
///
/// # Errors
///
/// Returns [`crate::BuildError::InvalidConfig`] when `count` is zero or
/// exceeds [`MAX_ACCELS`].
pub fn check_accel_count(count: usize) -> Result<(), crate::BuildError> {
    if count == 0 || count > MAX_ACCELS {
        return Err(crate::BuildError::InvalidConfig(format!(
            "accel_count must be in 1..={MAX_ACCELS} (BAR window carving), got {count}"
        )));
    }
    Ok(())
}

/// Device-side memory window (4 GiB), reachable from the host over PCIe
/// (the NUMA path) and from the accelerator directly.
pub const DEVMEM: AddrRange = AddrRange {
    base: 0x20_0000_0000,
    size: 4 << 30,
};

/// Activation window inside device memory for DevMem configurations.
pub const DEVMEM_ACT_BASE: u64 = DEVMEM.base + 0xA000_0000;

/// Per-device slice of [`DEVMEM`] used by heterogeneous topologies where
/// several endpoints carry their own local memory (256 MiB each).
pub const DEVMEM_STRIDE: u64 = DEVMEM.size / MAX_ACCELS as u64;

/// The device-memory slice of accelerator `i` (heterogeneous-endpoint
/// topologies give each local-memory endpoint its own slice so switch
/// ports can claim disjoint ranges).
///
/// # Panics
///
/// Panics if `i >= MAX_ACCELS`.
pub fn devmem_slice(i: usize) -> AddrRange {
    assert!(i < MAX_ACCELS, "accelerator index {i} out of range");
    AddrRange {
        base: DEVMEM.base + i as u64 * DEVMEM_STRIDE,
        size: DEVMEM_STRIDE,
    }
}

/// Base of the accelerator's virtual address space (SMMU-translated).
pub const ACCEL_VA_BASE: u64 = 0x40_0000_0000;

/// Size of each half (read / write) of the CPU activation window: the
/// Non-GEMM streaming path reads from `[act_base, act_base + ACT_SPLIT)`
/// and writes from `act_base + ACT_SPLIT` up — the single source of the
/// split every stream-address producer uses (see [`act_windows`]).
pub const ACT_SPLIT: u64 = 0x0800_0000;

/// The `(read, write)` activation windows for CPU-side Non-GEMM
/// streaming at `act_base`.
///
/// Both halves are [`ACT_SPLIT`] bytes, except when `act_base` sits
/// inside a *per-device* [`DEVMEM`] slice (switch-tree topologies pin it
/// at [`crate::topology`]'s slice offset): there the write window is
/// clamped to the end of the claimed slice, because an address past the
/// slice is claimed by no switch port and would bounce between the root
/// complex and the switch until the route stack overflows. The classic
/// monolithic [`DEVMEM_ACT_BASE`] keeps the full split (endpoint 0
/// claims the whole window).
pub fn act_windows(act_base: u64) -> (AddrRange, AddrRange) {
    let limit = if DEVMEM.contains(act_base) && act_base != DEVMEM_ACT_BASE {
        let slice = (act_base - DEVMEM.base) / DEVMEM_STRIDE;
        DEVMEM.base + (slice + 1) * DEVMEM_STRIDE
    } else {
        act_base + 2 * ACT_SPLIT
    };
    let read = AddrRange {
        base: act_base,
        size: ACT_SPLIT.min(limit - act_base),
    };
    let write_base = act_base + ACT_SPLIT;
    let write = AddrRange {
        base: write_base,
        size: limit.saturating_sub(write_base).min(ACT_SPLIT),
    };
    (read, write)
}

// Compile-time layout checks: the data window precedes the activation
// window, which precedes the page tables and the MSI doorbell.
const _: () = assert!(DATA_PA_BASE < HOST_ACT_BASE);
const _: () = assert!(HOST_ACT_BASE < PT_BASE);
const _: () = assert!(PT_BASE < MSI.base);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_do_not_overlap() {
        assert!(!DEVICE_BAR.overlaps(&DEVMEM));
        assert!(!DEVICE_BAR.overlaps(&HOST_DRAM));
        assert!(!DEVMEM.overlaps(&HOST_DRAM));
        // MSI and the page tables live inside host DRAM by design.
        assert!(HOST_DRAM.contains(MSI.base));
        assert!(HOST_DRAM.contains(PT_BASE));
        assert!(HOST_DRAM.contains(DATA_PA_BASE));
        assert!(HOST_DRAM.contains(HOST_ACT_BASE));
        // Window ordering is asserted at compile time next to the
        // constants themselves (`const _` checks in the module body).
    }

    #[test]
    fn devmem_activations_inside_devmem() {
        assert!(DEVMEM.contains(DEVMEM_ACT_BASE));
    }

    #[test]
    fn act_windows_split_and_never_overlap() {
        for base in [HOST_ACT_BASE, DEVMEM_ACT_BASE] {
            let (r, w) = act_windows(base);
            assert_eq!(r.base, base);
            assert_eq!(r.size, ACT_SPLIT);
            assert_eq!(w.base, base + ACT_SPLIT);
            assert_eq!(w.size, ACT_SPLIT);
            assert!(!r.overlaps(&w));
        }
    }

    #[test]
    fn act_windows_clamp_to_the_claimed_devmem_slice() {
        // A tree-style activation base inside slice 3: the write window
        // must end at the slice boundary, not walk into slice 4 (which
        // no switch port claims).
        let slice = devmem_slice(3);
        let base = slice.base + 0x0400_0000;
        let (r, w) = act_windows(base);
        assert_eq!(r.size, ACT_SPLIT);
        assert_eq!(w.base, base + ACT_SPLIT);
        assert_eq!(w.base + w.size, slice.base + slice.size);
        assert!(w.size < ACT_SPLIT);
    }

    #[test]
    fn per_device_bars_tile_the_device_window() {
        assert_eq!(doorbell(0), DOORBELL);
        for i in 0..MAX_ACCELS {
            let bar = device_bar(i);
            assert!(DEVICE_BAR.contains(bar.base));
            assert!(DEVICE_BAR.contains(bar.base + bar.size - 1));
            for j in 0..i {
                assert!(!bar.overlaps(&device_bar(j)), "{i} vs {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn device_bar_bounds_checked() {
        device_bar(MAX_ACCELS);
    }
}
