//! The paper's Section V-D analytic model.
//!
//! `Time_overall = T_other + W_GEMM / P_GEMM + W_NonGEMM / P_NonGEMM`
//!
//! Given measured GEMM and Non-GEMM times on two systems (a PCIe
//! host-memory system and a DevMem system), the model predicts total
//! execution time as the Non-GEMM fraction varies and locates the
//! crossover fraction where DevMem starts to win (Fig. 9).

/// Measured phase times of one system configuration, in nanoseconds,
/// for a reference workload.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTimes {
    /// Time the reference workload spends in GEMM work on this system.
    pub gemm_ns: f64,
    /// Time it spends in Non-GEMM work on this system.
    pub non_gemm_ns: f64,
}

/// The Section V-D workload-composition model comparing a PCIe
/// (host-memory) system against a DevMem system.
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ThresholdModel {
    /// Host/PCIe system phase times.
    pub pcie: PhaseTimes,
    /// DevMem system phase times.
    pub devmem: PhaseTimes,
    /// Fixed time independent of the split (driver, framework).
    pub t_other_ns: f64,
}

impl ThresholdModel {
    /// Total time when a fraction `w_non_gemm ∈ [0, 1]` of the workload's
    /// *work* is Non-GEMM (work is scaled so the reference workload's
    /// GEMM part takes `gemm_ns` at fraction 0).
    ///
    /// # Panics
    ///
    /// Panics if `w_non_gemm` is outside `[0, 1]`.
    pub fn total_ns(&self, w_non_gemm: f64, devmem: bool) -> f64 {
        assert!(
            (0.0..=1.0).contains(&w_non_gemm),
            "fraction out of range: {w_non_gemm}"
        );
        let t = if devmem { self.devmem } else { self.pcie };
        self.t_other_ns + (1.0 - w_non_gemm) * t.gemm_ns + w_non_gemm * t.non_gemm_ns
    }

    /// The Non-GEMM fraction at which the two systems tie; below it (more
    /// GEMM-dominated) DevMem wins. `None` when one system dominates at
    /// every mix.
    pub fn crossover_non_gemm_fraction(&self) -> Option<f64> {
        // Solve pcie(w) = devmem(w): linear in w.
        let dg = self.pcie.gemm_ns - self.devmem.gemm_ns; // >0 when DevMem's GEMM is faster
        let dn = self.devmem.non_gemm_ns - self.pcie.non_gemm_ns; // >0 when DevMem's Non-GEMM is slower
        let denom = dg + dn;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        let w = dg / denom;
        (0.0..=1.0).contains(&w).then_some(w)
    }

    /// The paper's headline number: the minimum **GEMM fraction** above
    /// which DevMem is preferable (`W_GEMM` threshold of Fig. 9).
    pub fn devmem_wins_above_gemm_fraction(&self) -> Option<f64> {
        self.crossover_non_gemm_fraction().map(|w| 1.0 - w)
    }

    /// Sample both curves over `steps` evenly spaced Non-GEMM fractions,
    /// returning `(w_non_gemm, pcie_ns, devmem_ns)` triples (Fig. 9's
    /// series).
    pub fn sweep(&self, steps: usize) -> Vec<(f64, f64, f64)> {
        assert!(steps >= 2, "need at least the two endpoints");
        (0..steps)
            .map(|i| {
                let w = i as f64 / (steps - 1) as f64;
                (w, self.total_ns(w, false), self.total_ns(w, true))
            })
            .collect()
    }
}

/// A point of the Fig. 2 roofline: normalized execution time as a
/// function of per-tile compute time.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RooflinePoint {
    /// Systolic-array compute time per output tile, in nanoseconds.
    pub compute_ns: f64,
    /// Measured execution time, in nanoseconds.
    pub exec_ns: f64,
}

/// Locate the memory-bound → compute-bound knee of a roofline series:
/// the smallest compute time whose execution time exceeds the plateau
/// (minimum execution time) by `tolerance` (e.g. 0.05 = 5 %).
///
/// Points may be passed in any order.
pub fn roofline_knee(points: &[RooflinePoint], tolerance: f64) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let mut sorted: Vec<RooflinePoint> = points.to_vec();
    sorted.sort_by(|a, b| a.compute_ns.total_cmp(&b.compute_ns));
    let plateau = sorted
        .iter()
        .map(|p| p.exec_ns)
        .fold(f64::INFINITY, f64::min);
    sorted
        .iter()
        .find(|p| p.exec_ns > plateau * (1.0 + tolerance))
        .map(|p| p.compute_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThresholdModel {
        // DevMem: fast GEMM (600), slow Non-GEMM (3000).
        // PCIe: slower GEMM (1000), fast Non-GEMM (500).
        ThresholdModel {
            pcie: PhaseTimes {
                gemm_ns: 1000.0,
                non_gemm_ns: 500.0,
            },
            devmem: PhaseTimes {
                gemm_ns: 600.0,
                non_gemm_ns: 3000.0,
            },
            t_other_ns: 100.0,
        }
    }

    #[test]
    fn endpoints_pick_the_right_winner() {
        let m = model();
        // Pure GEMM: DevMem wins.
        assert!(m.total_ns(0.0, true) < m.total_ns(0.0, false));
        // Pure Non-GEMM: PCIe wins.
        assert!(m.total_ns(1.0, true) > m.total_ns(1.0, false));
    }

    #[test]
    fn crossover_matches_hand_solution() {
        let m = model();
        // dg = 400, dn = 2500 -> w* = 400/2900.
        let w = m.crossover_non_gemm_fraction().unwrap();
        assert!((w - 400.0 / 2900.0).abs() < 1e-12);
        let wg = m.devmem_wins_above_gemm_fraction().unwrap();
        assert!((wg - (1.0 - 400.0 / 2900.0)).abs() < 1e-12);
        // At the crossover the two systems tie.
        assert!((m.total_ns(w, true) - m.total_ns(w, false)).abs() < 1e-9);
    }

    #[test]
    fn higher_pcie_bandwidth_lowers_the_gemm_threshold() {
        // Faster PCIe shrinks the host GEMM time; DevMem then needs a
        // more GEMM-dominated mix to win — exactly the paper's trend
        // (34.31 % at 2 GB/s vs 4.27 % at 64 GB/s ... as thresholds on
        // W_GEMM these *decrease* with bandwidth because the crossover
        // w_non_gemm grows smaller).
        let slow = model();
        let mut fast = model();
        fast.pcie.gemm_ns = 650.0; // 64 GB/s-style host GEMM
        let w_slow = slow.crossover_non_gemm_fraction().unwrap();
        let w_fast = fast.crossover_non_gemm_fraction().unwrap();
        assert!(w_fast < w_slow);
    }

    #[test]
    fn no_crossover_when_one_system_dominates() {
        let mut m = model();
        m.devmem = PhaseTimes {
            gemm_ns: 100.0,
            non_gemm_ns: 100.0,
        };
        assert!(m.crossover_non_gemm_fraction().is_none());
    }

    #[test]
    fn sweep_covers_unit_interval() {
        let s = model().sweep(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10].0, 1.0);
        // PCIe curve is monotone here (its Non-GEMM is cheaper).
        assert!(s.windows(2).all(|w| w[1].1 <= w[0].1));
        // DevMem curve is increasing (its Non-GEMM is dear).
        assert!(s.windows(2).all(|w| w[1].2 >= w[0].2));
    }

    #[test]
    fn roofline_knee_detection() {
        // Plateau at 1000 ns until compute > 1500 ns, then linear.
        let pts: Vec<RooflinePoint> = (1..=10)
            .map(|i| {
                let c = i as f64 * 500.0;
                RooflinePoint {
                    compute_ns: c,
                    exec_ns: 1000f64.max(c * 0.9),
                }
            })
            .collect();
        let knee = roofline_knee(&pts, 0.05).unwrap();
        assert_eq!(knee, 1500.0);
        assert!(roofline_knee(&[], 0.05).is_none());
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn out_of_range_fraction_panics() {
        model().total_ns(1.5, false);
    }
}
