//! System builder and simulation driver.

use crate::addrmap;
use crate::{
    AccessMode, BuildError, InterconnectKind, MemBackendConfig, MemoryLocation, RunError,
    RunReport, SystemConfig, VitReport,
};
use accesys_accel::{AccelController, AccelJob, GemmOperands};
use accesys_cache::{Cache, CoherentConfig};
use accesys_cpu::{CpuComplex, CpuOp};
use accesys_dma::DmaEngine;
use accesys_interconnect::{
    FlitLink, PcieEndpoint, PcieEndpointConfig, PcieLink, PcieSwitch, RootComplex,
    RootComplexConfig, SwitchPort, Xbar, XbarConfig,
};
use accesys_mem::{Dram, SimpleMemory};
use accesys_sim::{streams, units, Kernel, Module, ModuleId, Msg, RunLimit, Stats, Tick};
use accesys_smmu::{Smmu, SmmuStats};
use accesys_workload::{vit_ops, GemmSpec, VitModel};
use std::sync::Arc;

/// Module ids of the built system.
#[derive(Clone, Debug)]
#[allow(dead_code)] // some handles exist purely for instrumentation
struct Handles {
    host_mem: ModuleId,
    membus: ModuleId,
    llc: ModuleId,
    l1d: ModuleId,
    iocache: Option<ModuleId>,
    cpu: ModuleId,
    smmu: Option<ModuleId>,
    rc: ModuleId,
    switch: Option<ModuleId>,
    eps: Vec<ModuleId>,
    ctrls: Vec<ModuleId>,
    dmas: Vec<ModuleId>,
    devmem_xbar: Option<ModuleId>,
}

/// A built system ready to run workloads.
///
/// One `Simulation` owns one [`Kernel`] with the full Fig. 1 topology:
/// CPU cluster + caches, MemBus, SMMU, the configured interconnect
/// (PCIe RC / switch / links / endpoints, or a CXL flit link), one DMA
/// engine + accelerator wrapper per cluster member, and the configured
/// memory backends.
///
/// ```
/// use accesys::{Simulation, SystemConfig};
/// use accesys_workload::GemmSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = Simulation::new(SystemConfig::paper_baseline())?;
/// let report = sim.run_gemm(GemmSpec::square(64))?;
/// assert!(report.total_time_ns() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    cfg: SystemConfig,
    kernel: Kernel,
    h: Handles,
    next_cookie: u64,
}

fn make_mem(name: &str, cfg: &MemBackendConfig) -> Box<dyn Module> {
    match cfg {
        MemBackendConfig::Simple(c) => Box::new(SimpleMemory::new(name, *c)),
        MemBackendConfig::Dram(t) => Box::new(Dram::new(name, t.dram_config())),
    }
}

impl Simulation {
    /// Build a system from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] when [`SystemConfig::validate`]
    /// rejects the configuration.
    pub fn new(cfg: SystemConfig) -> Result<Self, BuildError> {
        cfg.validate()?;
        let mut kernel = Kernel::new();
        let dc = cfg.access_mode == AccessMode::DirectCache;
        let has_dev = cfg.dev_mem.is_some();
        let n = cfg.accel_count as usize;
        let cxl = cfg.interconnect == InterconnectKind::Cxl;

        // Reserve every slot first: the topology is cyclic.
        let host_mem = kernel.add_placeholder();
        let membus = kernel.add_placeholder();
        let llc = kernel.add_placeholder();
        let l1d = kernel.add_placeholder();
        let iocache = dc.then(|| kernel.add_placeholder());
        let cpu = kernel.add_placeholder();
        let smmu = cfg.smmu.is_some().then(|| kernel.add_placeholder());
        let rc = kernel.add_placeholder();
        let switch = (!cxl).then(|| kernel.add_placeholder());
        // Downstream of the RC: one link to the switch (PCIe) or straight
        // to the single endpoint (CXL).
        let link_rc_down = kernel.add_placeholder();
        let link_sw_up = (!cxl).then(|| kernel.add_placeholder());
        let link_sw_down: Vec<ModuleId> = if cxl {
            Vec::new()
        } else {
            (0..n).map(|_| kernel.add_placeholder()).collect()
        };
        let link_ep_up: Vec<ModuleId> = (0..n).map(|_| kernel.add_placeholder()).collect();
        let eps: Vec<ModuleId> = (0..n).map(|_| kernel.add_placeholder()).collect();
        let dmas: Vec<ModuleId> = (0..n).map(|_| kernel.add_placeholder()).collect();
        let ctrls: Vec<ModuleId> = (0..n).map(|_| kernel.add_placeholder()).collect();
        let devmem_xbar = has_dev.then(|| kernel.add_placeholder());
        let dev_mem = has_dev.then(|| kernel.add_placeholder());

        // Memory backends.
        kernel.set_module(host_mem, make_mem("host_mem", &cfg.host_mem));
        if let (Some(id), Some(mem_cfg)) = (dev_mem, cfg.dev_mem.as_ref()) {
            kernel.set_module(id, make_mem("dev_mem", mem_cfg));
        }

        // MemBus: MSI → CPU, device windows → RC, rest → memory ctrl.
        let mut bus = Xbar::new("membus", cfg.membus, host_mem);
        bus.add_route(addrmap::MSI, cpu);
        bus.add_route(addrmap::DEVICE_BAR, rc);
        if has_dev {
            bus.add_route(addrmap::DEVMEM, rc);
        }
        kernel.set_module(membus, Box::new(bus));

        // Cache hierarchy.
        let mut llc_cache = Cache::new("llc", cfg.llc, membus);
        if cfg.coherent && dc {
            llc_cache = llc_cache.with_coherence(CoherentConfig {
                cpu_cache: l1d,
                io_stream_base: streams::IO_BASE,
            });
        }
        kernel.set_module(llc, Box::new(llc_cache));
        kernel.set_module(l1d, Box::new(Cache::new("l1d", cfg.l1d, llc)));
        if let Some(id) = iocache {
            kernel.set_module(id, Box::new(Cache::new("iocache", cfg.iocache, llc)));
        }

        // The host target for accelerator traffic entering from PCIe/CXL.
        let io_entry = if dc {
            iocache.expect("DC mode allocates an IOCache")
        } else {
            membus
        };

        // SMMU (bump-in-the-wire in front of the IO entry point).
        if let (Some(id), Some(smmu_cfg)) = (smmu, cfg.smmu.as_ref()) {
            kernel.set_module(id, Box::new(Smmu::new("smmu", *smmu_cfg, io_entry)));
        }
        let rc_host_target = smmu.unwrap_or(io_entry);

        // Links.
        if cxl {
            let ep0 = eps[0];
            kernel.set_module(
                link_rc_down,
                Box::new(FlitLink::new("cxl.down", cfg.cxl_link, ep0)),
            );
            kernel.set_module(
                link_ep_up[0],
                Box::new(FlitLink::new("cxl.up", cfg.cxl_link, rc)),
            );
        } else {
            let sw = switch.expect("PCIe topology has a switch");
            kernel.set_module(
                link_rc_down,
                Box::new(PcieLink::new("link.rc_down", cfg.pcie.link, sw)),
            );
            kernel.set_module(
                link_sw_up.expect("PCIe topology"),
                Box::new(PcieLink::new("link.sw_up", cfg.pcie.link, rc)),
            );
            for i in 0..n {
                kernel.set_module(
                    link_sw_down[i],
                    Box::new(PcieLink::new(
                        &format!("link.sw_down{i}"),
                        cfg.pcie.link,
                        eps[i],
                    )),
                );
                kernel.set_module(
                    link_ep_up[i],
                    Box::new(PcieLink::new(&format!("link.ep_up{i}"), cfg.pcie.link, sw)),
                );
            }
        }

        // Root complex (PCIe) / host bridge (CXL).
        let rc_cfg = if cxl {
            RootComplexConfig {
                max_payload_bytes: cfg.pcie.rc.max_payload_bytes,
                ..RootComplexConfig::cxl_host_bridge()
            }
        } else {
            cfg.pcie.rc
        };
        let rc_name = if cxl { "cxl.bridge" } else { "pcie.rc" };
        let mut rc_mod = RootComplex::new(rc_name, rc_cfg, rc_host_target, link_rc_down)
            .with_device_range(addrmap::DEVICE_BAR)
            .with_sideband(addrmap::MSI, membus);
        if let Some(sw) = switch {
            rc_mod.add_pcie_module(sw);
        }
        for &ep in &eps {
            rc_mod.add_pcie_module(ep);
        }
        if has_dev {
            rc_mod.add_device_range(addrmap::DEVMEM);
        }
        kernel.set_module(rc, Box::new(rc_mod));

        // Switch with one port per cluster member (PCIe only).
        if let Some(sw) = switch {
            let mut sw_mod =
                PcieSwitch::new("pcie.switch", cfg.pcie.switch, link_sw_up.expect("PCIe"));
            for i in 0..n {
                let mut ranges = vec![addrmap::device_bar(i)];
                if has_dev && i == 0 {
                    ranges.push(addrmap::DEVMEM);
                }
                sw_mod.add_port(SwitchPort {
                    egress_link: link_sw_down[i],
                    endpoint: eps[i],
                    ranges,
                });
            }
            kernel.set_module(sw, Box::new(sw_mod));
        }

        // Endpoints: MMIO to the controller, NUMA window to DevMem.
        for i in 0..n {
            let ep_cfg = if cxl {
                PcieEndpointConfig {
                    tags: cfg.pcie.ep.tags,
                    proc_ns: cfg.pcie.ep.proc_ns,
                    ..PcieEndpointConfig::cxl()
                }
            } else {
                cfg.pcie.ep
            };
            let ep_name = if cxl {
                "cxl.ep".to_string()
            } else {
                format!("pcie.ep{i}")
            };
            let mut ep_mod = PcieEndpoint::new(
                &ep_name,
                ep_cfg,
                link_ep_up[i],
                ctrls[i],
                addrmap::device_bar(i),
            );
            if i == 0 {
                if let Some(xbar) = devmem_xbar {
                    ep_mod.add_inward_route(addrmap::DEVMEM, xbar);
                }
            }
            kernel.set_module(eps[i], Box::new(ep_mod));
        }

        // DevMem controller frontend.
        if let (Some(xbar), Some(mem)) = (devmem_xbar, dev_mem) {
            let cfg_x = XbarConfig {
                width_bytes: 64,
                freq_ghz: 2.0,
                latency_ns: 15.0,
            };
            kernel.set_module(xbar, Box::new(Xbar::new("devmem_ctrl", cfg_x, mem)));
        }

        // DMA engines + accelerator controllers.
        for i in 0..n {
            kernel.set_module(
                dmas[i],
                Box::new(DmaEngine::new(&format!("dma{i}"), cfg.dma)),
            );
            kernel.set_module(
                ctrls[i],
                Box::new(AccelController::new(
                    &format!("accel{i}"),
                    cfg.accel,
                    dmas[i],
                    eps[i],
                )),
            );
        }

        // CPU cluster.
        let mut cpu_mod = CpuComplex::new("cpu", cfg.cpu, l1d, membus);
        cpu_mod.add_uncached_range(addrmap::DEVICE_BAR.base, addrmap::DEVICE_BAR.size);
        if has_dev {
            cpu_mod.add_uncached_range(addrmap::DEVMEM.base, addrmap::DEVMEM.size);
        }
        kernel.set_module(cpu, Box::new(cpu_mod));

        Ok(Simulation {
            cfg,
            kernel,
            h: Handles {
                host_mem,
                membus,
                llc,
                l1d,
                iocache,
                cpu,
                smmu,
                rc,
                switch,
                eps,
                ctrls,
                dmas,
                devmem_xbar,
            },
            next_cookie: 0,
        })
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Direct access to the kernel (advanced use: custom modules, extra
    /// instrumentation).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Number of accelerators in the cluster.
    pub fn accel_count(&self) -> usize {
        self.h.ctrls.len()
    }

    /// Current SMMU statistics (zeroes when translation is disabled).
    pub fn smmu_stats(&self) -> SmmuStats {
        self.h
            .smmu
            .and_then(|id| self.kernel.module::<Smmu>(id))
            .map(|s| s.smmu_stats())
            .unwrap_or_default()
    }

    /// All module counters.
    pub fn stats(&self) -> Stats {
        self.kernel.stats()
    }

    fn alloc_cookie(&mut self) -> u64 {
        let c = self.next_cookie % 1000;
        self.next_cookie += 1;
        c
    }

    /// Lay out one GEMM job in the configured memory location, in the
    /// data window of cluster member `device`.
    fn layout_job(
        &self,
        spec: &GemmSpec,
        cookie: u64,
        functional: Option<Arc<GemmOperands>>,
        device: usize,
    ) -> AccelJob {
        let (a_sz, b_sz, _c_sz) =
            self.cfg
                .accel
                .region_bytes(spec.m, spec.n, spec.k, spec.dtype_bytes);
        let page_align = |x: u64| (x + 0xFFF) & !0xFFF;
        // Each cluster member works in its own 64 MiB slice of the data
        // window so concurrent shards do not alias rows.
        let dev_off = device as u64 * 0x0400_0000;
        let (base, virt, target) = match self.cfg.mem_location {
            MemoryLocation::Host => {
                if self.cfg.smmu.is_some() {
                    (addrmap::ACCEL_VA_BASE + dev_off, true, self.h.eps[device])
                } else {
                    (addrmap::DATA_PA_BASE + dev_off, false, self.h.eps[device])
                }
            }
            MemoryLocation::Device => (
                addrmap::DEVMEM.base + dev_off,
                false,
                self.h.devmem_xbar.expect("validated: devmem present"),
            ),
        };
        let a_addr = base;
        let b_addr = a_addr + page_align(a_sz);
        let c_addr = b_addr + page_align(b_sz);
        AccelJob {
            m: spec.m,
            n: spec.n,
            k: spec.k,
            dtype_bytes: spec.dtype_bytes,
            a_addr,
            b_addr,
            c_addr,
            virt,
            data_target: target,
            msi_addr: addrmap::MSI.base,
            cookie,
            functional,
        }
    }

    fn enqueue(&mut self, job: AccelJob, device: usize) {
        self.kernel
            .module_mut::<AccelController>(self.h.ctrls[device])
            .expect("controller present")
            .enqueue_job(job);
    }

    fn run_program(
        &mut self,
        program: Vec<CpuOp>,
    ) -> Result<(Tick, Vec<(String, Tick)>), RunError> {
        let start = self.kernel.now();
        {
            let cpu = self
                .kernel
                .module_mut::<CpuComplex>(self.h.cpu)
                .expect("cpu present");
            cpu.load_program(program);
        }
        self.kernel.schedule(start, self.h.cpu, Msg::Timer(0));
        self.kernel.run(RunLimit::default())?;
        let cpu = self
            .kernel
            .module::<CpuComplex>(self.h.cpu)
            .expect("cpu present");
        let end = cpu
            .finished_at()
            .ok_or_else(|| RunError::NoCompletion("cpu program did not finish".into()))?;
        let marks = cpu.marks().to_vec();
        Ok((end - start, marks))
    }

    fn record_marks(&self) -> Vec<usize> {
        self.h
            .ctrls
            .iter()
            .map(|&c| {
                self.kernel
                    .module::<AccelController>(c)
                    .expect("controller present")
                    .records()
                    .len()
            })
            .collect()
    }

    fn records_since(&self, before: &[usize]) -> Vec<accesys_accel::JobRecord> {
        let mut out = Vec::new();
        for (i, &c) in self.h.ctrls.iter().enumerate() {
            let recs = self
                .kernel
                .module::<AccelController>(c)
                .expect("controller present")
                .records();
            out.extend_from_slice(&recs[before[i]..]);
        }
        out
    }

    /// Build a system from `cfg` and run one GEMM to completion: the
    /// one-shot entry point sweep closures use, since every sweep point
    /// builds its own isolated simulation.
    ///
    /// ```
    /// use accesys::{Simulation, SystemConfig};
    /// use accesys_workload::GemmSpec;
    ///
    /// let report =
    ///     Simulation::measure_gemm(SystemConfig::paper_baseline(), GemmSpec::square(32)).unwrap();
    /// assert!(report.total_time_ns() > 0.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] if the configuration is invalid or the
    /// run fails.
    pub fn measure_gemm(cfg: SystemConfig, spec: GemmSpec) -> Result<RunReport, crate::Error> {
        Ok(Simulation::new(cfg)?.run_gemm(spec)?)
    }

    /// Build a system from `cfg` and run one GEMM sharded across every
    /// accelerator ([`Simulation::run_gemm_sharded`]), one-shot.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] if the configuration is invalid or the
    /// run fails.
    pub fn measure_gemm_sharded(
        cfg: SystemConfig,
        spec: GemmSpec,
    ) -> Result<RunReport, crate::Error> {
        Ok(Simulation::new(cfg)?.run_gemm_sharded(spec)?)
    }

    /// Build a system from `cfg` and run one ViT layer
    /// ([`Simulation::run_vit_layer`]), one-shot.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] if the configuration is invalid or the
    /// run fails.
    pub fn measure_vit_layer(
        cfg: SystemConfig,
        model: VitModel,
    ) -> Result<VitReport, crate::Error> {
        Ok(Simulation::new(cfg)?.run_vit_layer(model)?)
    }

    /// Run one GEMM through the full system (driver doorbell → DMA →
    /// compute → MSI) and report.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or the program
    /// never observes the completion interrupt.
    pub fn run_gemm(&mut self, spec: GemmSpec) -> Result<RunReport, RunError> {
        let functional = if self.cfg.functional {
            let (a, b) = spec.generate_operands();
            Some(Arc::new(GemmOperands::new(
                spec.m as usize,
                spec.n as usize,
                spec.k as usize,
                a,
                b,
            )))
        } else {
            None
        };
        self.run_gemm_with(spec, functional).map(|(r, _)| r)
    }

    /// Run one GEMM and verify the functional result against a golden
    /// reference (independent of `cfg.functional`).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as [`Simulation::run_gemm`] does.
    pub fn run_gemm_verified(&mut self, spec: GemmSpec) -> Result<(RunReport, bool), RunError> {
        let (a, b) = spec.generate_operands();
        let ops = Arc::new(GemmOperands::new(
            spec.m as usize,
            spec.n as usize,
            spec.k as usize,
            a,
            b,
        ));
        let (report, ops) = self.run_gemm_with(spec, Some(ops))?;
        let ops = ops.expect("operands attached");
        let passed = ops.result().map(|r| r == ops.golden()).unwrap_or(false);
        Ok((report, passed))
    }

    fn run_gemm_with(
        &mut self,
        spec: GemmSpec,
        functional: Option<Arc<GemmOperands>>,
    ) -> Result<(RunReport, Option<Arc<GemmOperands>>), RunError> {
        let cookie = self.alloc_cookie();
        let job = self.layout_job(&spec, cookie, functional.clone(), 0);
        let before = self.record_marks();
        self.enqueue(job, 0);
        let program = vec![
            CpuOp::Mark {
                label: "gemm:job".into(),
            },
            CpuOp::LaunchJob {
                doorbell_addr: addrmap::DOORBELL,
                job_cookie: cookie,
            },
        ];
        let (elapsed, _marks) = self.run_program(program)?;
        Ok((
            RunReport {
                total_ticks: elapsed,
                jobs: self.records_since(&before),
                smmu: self.smmu_stats(),
                stats: self.stats(),
            },
            functional,
        ))
    }

    /// Run one GEMM split row-wise across **all** cluster members: shard
    /// `i` computes rows `[i*m/N, (i+1)*m/N)` on accelerator `i`, all
    /// launched asynchronously and joined on their MSIs.
    ///
    /// With `accel_count == 1` this degenerates to [`Simulation::run_gemm`]
    /// (modulo the async driver path).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or any interrupt
    /// is lost.
    pub fn run_gemm_sharded(&mut self, spec: GemmSpec) -> Result<RunReport, RunError> {
        let n = self.accel_count() as u32;
        let before = self.record_marks();
        let rows_per = spec.m.div_ceil(n);
        let mut program = vec![CpuOp::Mark {
            label: "gemm:sharded".into(),
        }];
        let mut cookies = Vec::new();
        for dev in 0..n {
            let row0 = dev * rows_per;
            if row0 >= spec.m {
                break;
            }
            let rows = rows_per.min(spec.m - row0);
            let shard = GemmSpec { m: rows, ..spec };
            let cookie = self.alloc_cookie();
            let job = self.layout_job(&shard, cookie, None, dev as usize);
            self.enqueue(job, dev as usize);
            program.push(CpuOp::LaunchAsync {
                doorbell_addr: addrmap::doorbell(dev as usize),
            });
            cookies.push(cookie);
        }
        program.push(CpuOp::WaitAll { cookies });
        let (elapsed, _marks) = self.run_program(program)?;
        Ok(RunReport {
            total_ticks: elapsed,
            jobs: self.records_since(&before),
            smmu: self.smmu_stats(),
            stats: self.stats(),
        })
    }

    /// Run one encoder layer of `model`: GEMM operators offloaded to the
    /// accelerator, Non-GEMM operators streamed on the CPU from the
    /// configured memory location.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or an interrupt
    /// is lost.
    pub fn run_vit_layer(&mut self, model: VitModel) -> Result<VitReport, RunError> {
        self.run_ops(&vit_ops(model))
    }

    /// Run the full ViT inference graph (embedding, every encoder layer,
    /// classification head). Simulation cost scales with
    /// `model.layers()`; for sweeps prefer [`Simulation::run_vit_layer`]
    /// plus the Section V-D composition.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or an interrupt
    /// is lost.
    pub fn run_vit_full(&mut self, model: VitModel) -> Result<VitReport, RunError> {
        self.run_ops(&accesys_workload::vit_full_ops(model))
    }

    /// Run one BERT encoder layer at `seq_len` tokens — the NLP workload
    /// the paper's introduction motivates. Same GEMM/Non-GEMM split
    /// machinery as [`Simulation::run_vit_layer`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or an interrupt
    /// is lost.
    pub fn run_bert_layer(
        &mut self,
        model: accesys_workload::BertModel,
        seq_len: u32,
    ) -> Result<VitReport, RunError> {
        self.run_ops(&accesys_workload::bert_ops(model, seq_len))
    }

    fn run_ops(&mut self, ops: &[accesys_workload::Op]) -> Result<VitReport, RunError> {
        let mut program = Vec::new();
        let act_base = match self.cfg.mem_location {
            MemoryLocation::Host => addrmap::HOST_ACT_BASE,
            MemoryLocation::Device => addrmap::DEVMEM_ACT_BASE,
        };
        let mut read_cursor = act_base;
        let mut write_cursor = act_base + 0x0800_0000;
        let before = self.record_marks();
        for op in ops {
            if let Some(g) = op.gemm {
                for _ in 0..op.count {
                    let cookie = self.alloc_cookie();
                    let job = self.layout_job(&g, cookie, None, 0);
                    self.enqueue(job, 0);
                    program.push(CpuOp::Mark {
                        label: format!("gemm:{}", op.name),
                    });
                    program.push(CpuOp::LaunchJob {
                        doorbell_addr: addrmap::DOORBELL,
                        job_cookie: cookie,
                    });
                }
            } else {
                program.push(CpuOp::Mark {
                    label: format!("nongemm:{}", op.name),
                });
                program.push(CpuOp::Stream {
                    read_bytes: op.read_bytes * u64::from(op.count),
                    write_bytes: op.write_bytes * u64::from(op.count),
                    flops: op.flops * u64::from(op.count),
                    read_addr: read_cursor,
                    write_addr: write_cursor,
                });
                read_cursor += op.read_bytes * u64::from(op.count);
                write_cursor += op.write_bytes * u64::from(op.count);
            }
        }
        let (elapsed, marks) = self.run_program(program)?;
        // Convert marks into phase durations.
        let mut phases = Vec::new();
        for pair in marks.windows(2) {
            let (label, t0) = (&pair[0].0, pair[0].1);
            let t1 = pair[1].1;
            phases.push((label.clone(), units::to_ns(t1 - t0)));
        }
        Ok(VitReport {
            total_ticks: elapsed,
            phases,
            jobs: self.records_since(&before),
            stats: self.stats(),
        })
    }

    /// Run a single CPU streaming kernel (used by NUMA micro-studies).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the program does not finish.
    pub fn run_stream(
        &mut self,
        read_bytes: u64,
        write_bytes: u64,
        flops: u64,
    ) -> Result<f64, RunError> {
        let act_base = match self.cfg.mem_location {
            MemoryLocation::Host => addrmap::HOST_ACT_BASE,
            MemoryLocation::Device => addrmap::DEVMEM_ACT_BASE,
        };
        let program = vec![
            CpuOp::Mark {
                label: "nongemm:stream".into(),
            },
            CpuOp::Stream {
                read_bytes,
                write_bytes,
                flops,
                read_addr: act_base,
                write_addr: act_base + 0x0800_0000,
            },
        ];
        let (elapsed, _) = self.run_program(program)?;
        Ok(units::to_ns(elapsed))
    }

    /// Ids useful for tests and instrumentation: `(cpu, llc, host_mem,
    /// rc, ep0, ctrl0, dma0, membus)`.
    #[doc(hidden)]
    pub fn debug_handles(
        &self,
    ) -> (
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
    ) {
        (
            self.h.cpu,
            self.h.llc,
            self.h.host_mem,
            self.h.rc,
            self.h.eps[0],
            self.h.ctrls[0],
            self.h.dmas[0],
            self.h.membus,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_mem::MemTech;

    #[test]
    fn baseline_gemm_end_to_end() {
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(report.total_time_ns() > 0.0);
        // Traffic flowed over PCIe and through the SMMU.
        assert!(report.stats.get_or_zero("pcie.ep0.reads_sent") > 0.0);
        assert!(report.smmu.translations > 0);
        assert!(report.stats.get_or_zero("cpu.irqs") >= 1.0);
    }

    #[test]
    fn functional_result_verified_through_full_system() {
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let (report, passed) = sim.run_gemm_verified(GemmSpec::square(64)).unwrap();
        assert!(passed, "functional GEMM result mismatch");
        assert!(report.bytes_moved() > 0);
    }

    #[test]
    fn devmem_gemm_bypasses_pcie() {
        let mut sim = Simulation::new(SystemConfig::devmem(MemTech::Hbm2)).unwrap();
        let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        // Data came from device memory, not over the PCIe endpoint.
        assert!(report.stats.get_or_zero("dev_mem.bytes") > 0.0);
        assert_eq!(report.stats.get_or_zero("pcie.ep0.reads_sent"), 0.0);
    }

    #[test]
    fn faster_pcie_is_faster_for_memory_bound_gemm() {
        let t = |gb: f64| {
            let mut sim = Simulation::new(SystemConfig::pcie_host(gb, MemTech::Ddr4)).unwrap();
            sim.run_gemm(GemmSpec::square(256)).unwrap().total_time_ns()
        };
        let slow = t(2.0);
        let fast = t(16.0);
        assert!(slow > 2.0 * fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn dm_mode_skips_the_cache_hierarchy() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.access_mode = AccessMode::DirectMemory;
        let mut sim = Simulation::new(cfg).unwrap();
        let report = sim.run_gemm(GemmSpec::square(64)).unwrap();
        assert_eq!(report.stats.get_or_zero("iocache.misses"), 0.0);
        assert!(report.stats.get_or_zero("host_mem.bytes") > 0.0);
    }

    #[test]
    fn vit_layer_runs_with_phases() {
        let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
        let report = sim.run_vit_layer(VitModel::Base).unwrap();
        assert!(report.gemm_ns() > 0.0);
        assert!(report.non_gemm_ns() > 0.0);
        assert_eq!(report.jobs.len(), 4 + 2 * 12); // qkv,proj,fc1,fc2 + 2x12 heads
    }

    // ---- CXL topology ----

    #[test]
    fn cxl_system_runs_gemm_end_to_end() {
        let mut sim = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4)).unwrap();
        let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        // Traffic crossed the flit link, not a PCIe hierarchy.
        assert!(report.stats.get_or_zero("cxl.up.flits") > 0.0);
        assert_eq!(report.stats.get_or_zero("pcie.switch.up_tlps"), 0.0);
    }

    #[test]
    fn cxl_functional_results_stay_correct() {
        let mut sim = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4)).unwrap();
        let (_, passed) = sim.run_gemm_verified(GemmSpec::square(64)).unwrap();
        assert!(passed);
    }

    #[test]
    fn cxl_beats_equal_bandwidth_pcie_on_small_transfers() {
        // Same effective bandwidth; CXL wins on per-hop latency for a
        // latency-dominated (small) job.
        let mut cxl = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4)).unwrap();
        let cxl_bw = cxl.config().cxl_link.payload_bandwidth_gbps();
        let mut pcie = Simulation::new(SystemConfig::pcie_host(cxl_bw, MemTech::Ddr4)).unwrap();
        let t_cxl = cxl.run_gemm(GemmSpec::square(64)).unwrap().total_time_ns();
        let t_pcie = pcie.run_gemm(GemmSpec::square(64)).unwrap().total_time_ns();
        assert!(t_cxl < t_pcie, "cxl {t_cxl} vs pcie {t_pcie}");
    }

    #[test]
    fn cxl_rejects_multi_accel() {
        let cfg = SystemConfig::cxl_host(8, MemTech::Ddr4).with_accel_count(2);
        assert!(Simulation::new(cfg).is_err());
    }

    // ---- multi-accelerator cluster ----

    #[test]
    fn sharded_gemm_uses_every_cluster_member() {
        let cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_accel_count(4);
        let mut sim = Simulation::new(cfg).unwrap();
        let report = sim.run_gemm_sharded(GemmSpec::square(256)).unwrap();
        assert_eq!(report.jobs.len(), 4);
        for i in 0..4 {
            assert!(
                report.stats.get_or_zero(&format!("accel{i}.jobs_done")) >= 1.0,
                "accelerator {i} idle"
            );
        }
        // All shards C bytes sum to the full matrix.
        let stored: u64 = report.jobs.iter().map(|j| j.bytes_stored).sum();
        assert_eq!(stored, 256 * 256 * 4);
    }

    #[test]
    fn sharding_scales_compute_bound_jobs() {
        // Strongly compute-bound: 4 accelerators ≈ 4× faster.
        let slow_array = |count: u32| {
            let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4)
                .with_accel_count(count)
                .with_compute_override_ns(50_000.0);
            cfg.smmu = None; // isolate compute scaling
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run_gemm_sharded(GemmSpec::square(256))
                .unwrap()
                .total_time_ns()
        };
        let one = slow_array(1);
        let four = slow_array(4);
        let speedup = one / four;
        assert!(
            speedup > 3.0,
            "expected near-linear scaling, got {speedup:.2}×"
        );
    }

    #[test]
    fn sharded_single_accel_matches_plain_run_shape() {
        let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
        let report = sim.run_gemm_sharded(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(report.total_time_ns() > 0.0);
    }
}
