//! Simulation driver: workload launching and report assembly.
//!
//! System *construction* lives in [`crate::topology`]: [`Simulation::new`]
//! lowers the [`SystemConfig`] to a [`TopologySpec`] and lets the generic
//! wiring engine instantiate it, so this module only drives workloads
//! (doorbells, programs, sharding) and assembles reports.

use crate::addrmap;
use crate::topology::{DeviceHandles, TopologyHandles, TopologySpec};
use crate::{BuildError, MemoryLocation, RunError, RunReport, SystemConfig, VitReport};
use accesys_accel::{AccelController, AccelJob, GemmOperands};
use accesys_cpu::{CpuComplex, CpuOp};
use accesys_interconnect::AddrRange;
use accesys_sim::{units, Kernel, ModuleId, Msg, RunLimit, Stats, Tick};
use accesys_smmu::{Smmu, SmmuStats};
use accesys_workload::{graph, vit_ops, GemmSpec, VitModel};
use std::sync::Arc;

/// A built system ready to run workloads.
///
/// One `Simulation` owns one [`Kernel`] holding an instantiated
/// [`TopologySpec`] — the paper's Fig. 1 shape when built with
/// [`Simulation::new`], or any validated custom shape (switch trees,
/// heterogeneous endpoints) via [`Simulation::from_topology`].
///
/// ```
/// use accesys::{Simulation, SystemConfig};
/// use accesys_workload::GemmSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = Simulation::new(SystemConfig::paper_baseline())?;
/// let report = sim.run_gemm(GemmSpec::square(64))?;
/// assert!(report.total_time_ns() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation {
    cfg: SystemConfig,
    kernel: Kernel,
    topo: TopologyHandles,
    next_cookie: u64,
}

impl Simulation {
    /// Build the classic Fig. 1 system from `cfg` by lowering it through
    /// the topology engine ([`SystemConfig::topology`]).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] when [`SystemConfig::validate`]
    /// rejects the configuration.
    pub fn new(cfg: SystemConfig) -> Result<Self, BuildError> {
        let spec = cfg.topology()?;
        Self::from_topology(cfg, &spec)
    }

    /// Build a system from an explicit topology spec — switch trees
    /// ([`crate::topology::switch_tree`]), heterogeneous endpoints, or a
    /// hand-assembled graph. `cfg` still supplies workload-facing knobs
    /// (functional mode, activation placement); the wiring comes
    /// entirely from `spec`.
    ///
    /// # Errors
    ///
    /// Returns any [`TopologySpec::validate`] error.
    pub fn from_topology(cfg: SystemConfig, spec: &TopologySpec) -> Result<Self, BuildError> {
        let mut kernel = Kernel::new();
        let topo = spec.instantiate(&mut kernel)?;
        if cfg.kernel_threads > 1 {
            if let Some(p) = spec.partition(&topo) {
                kernel.set_partition(p.domains, p.lookahead, cfg.kernel_threads as usize);
            }
        }
        Ok(Simulation {
            cfg,
            kernel,
            topo,
            next_cookie: 0,
        })
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Direct access to the kernel (advanced use: custom modules, extra
    /// instrumentation).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Kernel-side handles of the instantiated topology.
    pub fn handles(&self) -> &TopologyHandles {
        &self.topo
    }

    /// Number of accelerators in the system.
    pub fn accel_count(&self) -> usize {
        self.topo.devices.len()
    }

    /// Current SMMU statistics (zeroes when translation is disabled).
    pub fn smmu_stats(&self) -> SmmuStats {
        self.topo
            .smmu
            .and_then(|id| self.kernel.module::<Smmu>(id))
            .map(|s| s.smmu_stats())
            .unwrap_or_default()
    }

    /// All module counters.
    pub fn stats(&self) -> Stats {
        self.kernel.stats()
    }

    pub(crate) fn alloc_cookie(&mut self) -> u64 {
        let c = self.next_cookie % 1000;
        self.next_cookie += 1;
        c
    }

    /// The next cookie value without consuming it (the graph compiler
    /// draws from a local counter and commits only on success).
    pub(crate) fn peek_cookie(&self) -> u64 {
        self.next_cookie
    }

    /// Consume `count` cookies after a successful graph compile.
    pub(crate) fn commit_cookies(&mut self, count: u64) {
        self.next_cookie += count;
    }

    pub(crate) fn device(&self, i: usize) -> &DeviceHandles {
        &self.topo.devices[i]
    }

    /// Where CPU-side Non-GEMM activations live: the host window, or the
    /// topology's claimed device-memory activation window (the classic
    /// monolithic base when the spec predates per-slice carving).
    fn act_base(&self) -> u64 {
        match self.cfg.mem_location {
            MemoryLocation::Host => addrmap::HOST_ACT_BASE,
            MemoryLocation::Device => self
                .topo
                .devmem_act_base
                .unwrap_or(addrmap::DEVMEM_ACT_BASE),
        }
    }

    /// The claimed `(read, write)` activation windows CPU streaming may
    /// use — the single source of the read/write split
    /// ([`addrmap::act_windows`]) every stream-address producer shares.
    pub(crate) fn act_windows(&self) -> (AddrRange, AddrRange) {
        addrmap::act_windows(self.act_base())
    }

    /// Lay out one GEMM job in device `device`'s configured data window
    /// (each device works in its own slice so concurrent shards never
    /// alias rows).
    pub(crate) fn layout_job(
        &self,
        spec: &GemmSpec,
        cookie: u64,
        functional: Option<Arc<GemmOperands>>,
        device: usize,
    ) -> AccelJob {
        let d = self.device(device);
        let (a_sz, b_sz, _c_sz) =
            d.accel_cfg
                .region_bytes(spec.m, spec.n, spec.k, spec.dtype_bytes);
        let page_align = |x: u64| (x + 0xFFF) & !0xFFF;
        let a_addr = d.data_base;
        let b_addr = a_addr + page_align(a_sz);
        let c_addr = b_addr + page_align(b_sz);
        AccelJob {
            m: spec.m,
            n: spec.n,
            k: spec.k,
            dtype_bytes: spec.dtype_bytes,
            a_addr,
            b_addr,
            c_addr,
            virt: d.virt,
            data_target: d.data_target,
            msi_addr: addrmap::MSI.base,
            cookie,
            functional,
        }
    }

    pub(crate) fn enqueue(&mut self, job: AccelJob, device: usize) {
        let ctrl = self.device(device).ctrl;
        self.kernel
            .module_mut::<AccelController>(ctrl)
            .expect("controller present")
            .enqueue_job(job);
    }

    pub(crate) fn run_program(
        &mut self,
        program: Vec<CpuOp>,
    ) -> Result<(Tick, Vec<(String, Tick)>), RunError> {
        let start = self.kernel.now();
        {
            let cpu = self
                .kernel
                .module_mut::<CpuComplex>(self.topo.cpu)
                .expect("cpu present");
            cpu.load_program(program);
        }
        self.kernel.schedule(start, self.topo.cpu, Msg::Timer(0));
        self.kernel.run(RunLimit::default())?;
        let cpu = self
            .kernel
            .module::<CpuComplex>(self.topo.cpu)
            .expect("cpu present");
        let end = cpu
            .finished_at()
            .ok_or_else(|| RunError::NoCompletion("cpu program did not finish".into()))?;
        let marks = cpu.marks().to_vec();
        Ok((end - start, marks))
    }

    pub(crate) fn record_marks(&self) -> Vec<usize> {
        self.topo
            .devices
            .iter()
            .map(|d| {
                self.kernel
                    .module::<AccelController>(d.ctrl)
                    .expect("controller present")
                    .records()
                    .len()
            })
            .collect()
    }

    pub(crate) fn records_since(&self, before: &[usize]) -> Vec<accesys_accel::JobRecord> {
        let mut out = Vec::new();
        for (i, d) in self.topo.devices.iter().enumerate() {
            let recs = self
                .kernel
                .module::<AccelController>(d.ctrl)
                .expect("controller present")
                .records();
            out.extend_from_slice(&recs[before[i]..]);
        }
        out
    }

    /// Build a system from `cfg` and run one GEMM to completion: the
    /// one-shot entry point sweep closures use, since every sweep point
    /// builds its own isolated simulation.
    ///
    /// ```
    /// use accesys::{Simulation, SystemConfig};
    /// use accesys_workload::GemmSpec;
    ///
    /// let report =
    ///     Simulation::measure_gemm(SystemConfig::paper_baseline(), GemmSpec::square(32)).unwrap();
    /// assert!(report.total_time_ns() > 0.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] if the configuration is invalid or the
    /// run fails.
    pub fn measure_gemm(cfg: SystemConfig, spec: GemmSpec) -> Result<RunReport, crate::Error> {
        Ok(Simulation::new(cfg)?.run_gemm(spec)?)
    }

    /// Build a system from `cfg` and run one GEMM sharded across every
    /// accelerator ([`Simulation::run_gemm_sharded`]), one-shot.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] if the configuration is invalid or the
    /// run fails.
    pub fn measure_gemm_sharded(
        cfg: SystemConfig,
        spec: GemmSpec,
    ) -> Result<RunReport, crate::Error> {
        Ok(Simulation::new(cfg)?.run_gemm_sharded(spec)?)
    }

    /// Build a system from `cfg` and run one ViT layer
    /// ([`Simulation::run_vit_layer`]), one-shot.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error`] if the configuration is invalid or the
    /// run fails.
    pub fn measure_vit_layer(
        cfg: SystemConfig,
        model: VitModel,
    ) -> Result<VitReport, crate::Error> {
        Ok(Simulation::new(cfg)?.run_vit_layer(model)?)
    }

    /// Run one GEMM through the full system (driver doorbell → DMA →
    /// compute → MSI) and report.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or the program
    /// never observes the completion interrupt.
    pub fn run_gemm(&mut self, spec: GemmSpec) -> Result<RunReport, RunError> {
        let functional = if self.cfg.functional {
            let (a, b) = spec.generate_operands();
            Some(Arc::new(GemmOperands::new(
                spec.m as usize,
                spec.n as usize,
                spec.k as usize,
                a,
                b,
            )))
        } else {
            None
        };
        self.run_gemm_with(spec, functional).map(|(r, _)| r)
    }

    /// Run one GEMM and verify the functional result against a golden
    /// reference (independent of `cfg.functional`).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as [`Simulation::run_gemm`] does.
    pub fn run_gemm_verified(&mut self, spec: GemmSpec) -> Result<(RunReport, bool), RunError> {
        let (a, b) = spec.generate_operands();
        let ops = Arc::new(GemmOperands::new(
            spec.m as usize,
            spec.n as usize,
            spec.k as usize,
            a,
            b,
        ));
        let (report, ops) = self.run_gemm_with(spec, Some(ops))?;
        let ops = ops.expect("operands attached");
        let passed = ops.result().map(|r| r == ops.golden()).unwrap_or(false);
        Ok((report, passed))
    }

    fn run_gemm_with(
        &mut self,
        spec: GemmSpec,
        functional: Option<Arc<GemmOperands>>,
    ) -> Result<(RunReport, Option<Arc<GemmOperands>>), RunError> {
        let cookie = self.alloc_cookie();
        let job = self.layout_job(&spec, cookie, functional.clone(), 0);
        let before = self.record_marks();
        self.enqueue(job, 0);
        let program = vec![
            CpuOp::Mark {
                label: "gemm:job".into(),
            },
            CpuOp::LaunchJob {
                doorbell_addr: self.device(0).doorbell,
                job_cookie: cookie,
            },
        ];
        let (elapsed, _marks) = self.run_program(program)?;
        Ok((
            RunReport {
                total_ticks: elapsed,
                jobs: self.records_since(&before),
                smmu: self.smmu_stats(),
                stats: self.stats(),
            },
            functional,
        ))
    }

    /// Run one GEMM split row-wise across **all** devices: shard `i`
    /// computes rows `[i*m/N, (i+1)*m/N)` on accelerator `i`, all
    /// launched asynchronously and joined on their MSIs — the fork-join
    /// lowering ([`graph::gemm_fork_join`]) executed by the generic
    /// dispatcher.
    ///
    /// With one device this degenerates to [`Simulation::run_gemm`].
    /// Works on any topology — the shards land wherever each device's
    /// data placement says.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or any interrupt
    /// is lost.
    pub fn run_gemm_sharded(&mut self, spec: GemmSpec) -> Result<RunReport, RunError> {
        self.run_graph_gemm(&graph::gemm_fork_join(spec, self.accel_count()))
    }

    /// Run one encoder layer of `model`: GEMM operators offloaded to the
    /// accelerator, Non-GEMM operators streamed on the CPU from the
    /// configured memory location. Lowers to a chain
    /// [`graph::TaskGraph`] ([`graph::op_chain`]) executed by the
    /// generic dispatcher, reproducing the sequential driver exactly.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or an interrupt
    /// is lost.
    pub fn run_vit_layer(&mut self, model: VitModel) -> Result<VitReport, RunError> {
        self.run_graph(&graph::op_chain(&vit_ops(model)))
    }

    /// Run the full ViT inference graph (embedding, every encoder layer,
    /// classification head). Simulation cost scales with
    /// `model.layers()`; for sweeps prefer [`Simulation::run_vit_layer`]
    /// plus the Section V-D composition.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or an interrupt
    /// is lost.
    pub fn run_vit_full(&mut self, model: VitModel) -> Result<VitReport, RunError> {
        self.run_graph(&graph::op_chain(&accesys_workload::vit_full_ops(model)))
    }

    /// Run one BERT encoder layer at `seq_len` tokens — the NLP workload
    /// the paper's introduction motivates. Same GEMM/Non-GEMM split
    /// machinery as [`Simulation::run_vit_layer`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation livelocks or an interrupt
    /// is lost.
    pub fn run_bert_layer(
        &mut self,
        model: accesys_workload::BertModel,
        seq_len: u32,
    ) -> Result<VitReport, RunError> {
        self.run_graph(&graph::op_chain(&accesys_workload::bert_ops(
            model, seq_len,
        )))
    }

    /// Run a single CPU streaming kernel (used by NUMA micro-studies).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ActWindowOverflow`] when the stream would
    /// walk past the claimed activation windows, or any [`RunError`] if
    /// the program does not finish.
    pub fn run_stream(
        &mut self,
        read_bytes: u64,
        write_bytes: u64,
        flops: u64,
    ) -> Result<f64, RunError> {
        let (read_win, write_win) = self.act_windows();
        if read_bytes > read_win.size {
            return Err(RunError::ActWindowOverflow {
                window: "read",
                needed_end: read_win.base + read_bytes,
                limit: read_win.base + read_win.size,
            });
        }
        if write_bytes > write_win.size {
            return Err(RunError::ActWindowOverflow {
                window: "write",
                needed_end: write_win.base + write_bytes,
                limit: write_win.base + write_win.size,
            });
        }
        let program = vec![
            CpuOp::Mark {
                label: "nongemm:stream".into(),
            },
            CpuOp::Stream {
                read_bytes,
                write_bytes,
                flops,
                read_addr: read_win.base,
                write_addr: write_win.base,
            },
        ];
        let (elapsed, _) = self.run_program(program)?;
        Ok(units::to_ns(elapsed))
    }

    /// Ids useful for tests and instrumentation: `(cpu, llc, host_mem,
    /// rc, ep0, ctrl0, dma0, membus)`. Non-device entries are looked up
    /// by their canonical preset names and come back as
    /// [`ModuleId::INVALID`] on custom topologies that renamed them.
    #[doc(hidden)]
    pub fn debug_handles(
        &self,
    ) -> (
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
        ModuleId,
    ) {
        let by_name = |name: &str| self.topo.lookup(name).unwrap_or(ModuleId::INVALID);
        let rc = self
            .topo
            .lookup("pcie.rc")
            .or_else(|| self.topo.lookup("cxl.bridge"))
            .unwrap_or(ModuleId::INVALID);
        (
            self.topo.cpu,
            by_name("llc"),
            by_name("host_mem"),
            rc,
            self.topo.devices[0].ep,
            self.topo.devices[0].ctrl,
            self.topo.devices[0].dma,
            by_name("membus"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{switch_tree, switch_tree_with, DataPlacement, EndpointOptions};
    use crate::{AccessMode, MemBackendConfig, SystemConfig};
    use accesys_mem::MemTech;

    #[test]
    fn baseline_gemm_end_to_end() {
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(report.total_time_ns() > 0.0);
        // Traffic flowed over PCIe and through the SMMU.
        assert!(report.stats.get_or_zero("pcie.ep0.reads_sent") > 0.0);
        assert!(report.smmu.translations > 0);
        assert!(report.stats.get_or_zero("cpu.irqs") >= 1.0);
    }

    #[test]
    fn functional_result_verified_through_full_system() {
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let (report, passed) = sim.run_gemm_verified(GemmSpec::square(64)).unwrap();
        assert!(passed, "functional GEMM result mismatch");
        assert!(report.bytes_moved() > 0);
    }

    #[test]
    fn devmem_gemm_bypasses_pcie() {
        let mut sim = Simulation::new(SystemConfig::devmem(MemTech::Hbm2)).unwrap();
        let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        // Data came from device memory, not over the PCIe endpoint.
        assert!(report.stats.get_or_zero("dev_mem.bytes") > 0.0);
        assert_eq!(report.stats.get_or_zero("pcie.ep0.reads_sent"), 0.0);
    }

    #[test]
    fn faster_pcie_is_faster_for_memory_bound_gemm() {
        let t = |gb: f64| {
            let mut sim = Simulation::new(SystemConfig::pcie_host(gb, MemTech::Ddr4)).unwrap();
            sim.run_gemm(GemmSpec::square(256)).unwrap().total_time_ns()
        };
        let slow = t(2.0);
        let fast = t(16.0);
        assert!(slow > 2.0 * fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn dm_mode_skips_the_cache_hierarchy() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.access_mode = AccessMode::DirectMemory;
        let mut sim = Simulation::new(cfg).unwrap();
        let report = sim.run_gemm(GemmSpec::square(64)).unwrap();
        assert_eq!(report.stats.get_or_zero("iocache.misses"), 0.0);
        assert!(report.stats.get_or_zero("host_mem.bytes") > 0.0);
    }

    #[test]
    fn vit_layer_runs_with_phases() {
        let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
        let report = sim.run_vit_layer(VitModel::Base).unwrap();
        assert!(report.gemm_ns() > 0.0);
        assert!(report.non_gemm_ns() > 0.0);
        assert_eq!(report.jobs.len(), 4 + 2 * 12); // qkv,proj,fc1,fc2 + 2x12 heads
    }

    // ---- CXL topology ----

    #[test]
    fn cxl_system_runs_gemm_end_to_end() {
        let mut sim = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4)).unwrap();
        let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        // Traffic crossed the flit link, not a PCIe hierarchy.
        assert!(report.stats.get_or_zero("cxl.up.flits") > 0.0);
        assert_eq!(report.stats.get_or_zero("pcie.switch.up_tlps"), 0.0);
    }

    #[test]
    fn cxl_functional_results_stay_correct() {
        let mut sim = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4)).unwrap();
        let (_, passed) = sim.run_gemm_verified(GemmSpec::square(64)).unwrap();
        assert!(passed);
    }

    #[test]
    fn cxl_beats_equal_bandwidth_pcie_on_small_transfers() {
        // Same effective bandwidth; CXL wins on per-hop latency for a
        // latency-dominated (small) job.
        let mut cxl = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4)).unwrap();
        let cxl_bw = cxl.config().cxl_link.payload_bandwidth_gbps();
        let mut pcie = Simulation::new(SystemConfig::pcie_host(cxl_bw, MemTech::Ddr4)).unwrap();
        let t_cxl = cxl.run_gemm(GemmSpec::square(64)).unwrap().total_time_ns();
        let t_pcie = pcie.run_gemm(GemmSpec::square(64)).unwrap().total_time_ns();
        assert!(t_cxl < t_pcie, "cxl {t_cxl} vs pcie {t_pcie}");
    }

    #[test]
    fn cxl_rejects_multi_accel() {
        let cfg = SystemConfig::cxl_host(8, MemTech::Ddr4).with_accel_count(2);
        assert!(Simulation::new(cfg).is_err());
    }

    // ---- multi-accelerator cluster ----

    #[test]
    fn sharded_gemm_uses_every_cluster_member() {
        let cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_accel_count(4);
        let mut sim = Simulation::new(cfg).unwrap();
        let report = sim.run_gemm_sharded(GemmSpec::square(256)).unwrap();
        assert_eq!(report.jobs.len(), 4);
        for i in 0..4 {
            assert!(
                report.stats.get_or_zero(&format!("accel{i}.jobs_done")) >= 1.0,
                "accelerator {i} idle"
            );
        }
        // All shards C bytes sum to the full matrix.
        let stored: u64 = report.jobs.iter().map(|j| j.bytes_stored).sum();
        assert_eq!(stored, 256 * 256 * 4);
    }

    #[test]
    fn sharding_scales_compute_bound_jobs() {
        // Strongly compute-bound: 4 accelerators ≈ 4× faster.
        let slow_array = |count: u32| {
            let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4)
                .with_accel_count(count)
                .with_compute_override_ns(50_000.0);
            cfg.smmu = None; // isolate compute scaling
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run_gemm_sharded(GemmSpec::square(256))
                .unwrap()
                .total_time_ns()
        };
        let one = slow_array(1);
        let four = slow_array(4);
        let speedup = one / four;
        assert!(
            speedup > 3.0,
            "expected near-linear scaling, got {speedup:.2}×"
        );
    }

    #[test]
    fn sharded_single_accel_matches_plain_run_shape() {
        let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
        let report = sim.run_gemm_sharded(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 1);
        assert!(report.total_time_ns() > 0.0);
    }

    // ---- explicit topologies ----

    #[test]
    fn depth_two_tree_runs_a_sharded_gemm_on_every_leaf() {
        let cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
        let spec = switch_tree(&cfg, &[2, 4]).unwrap();
        let mut sim = Simulation::from_topology(cfg, &spec).unwrap();
        assert_eq!(sim.accel_count(), 8);
        let report = sim.run_gemm_sharded(GemmSpec::square(256)).unwrap();
        assert_eq!(report.jobs.len(), 8);
        for i in 0..8 {
            assert!(
                report.stats.get_or_zero(&format!("accel{i}.jobs_done")) >= 1.0,
                "leaf {i} idle"
            );
        }
        // Leaf traffic funnels through both switch levels.
        assert!(report.stats.get_or_zero("pcie.sw0.up_tlps") > 0.0);
        assert!(report.stats.get_or_zero("pcie.sw0.0.up_tlps") > 0.0);
        let stored: u64 = report.jobs.iter().map(|j| j.bytes_stored).sum();
        assert_eq!(stored, 256 * 256 * 4);
    }

    #[test]
    fn deeper_trees_cost_switch_latency() {
        let cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
        let flat = switch_tree(&cfg, &[1]).unwrap();
        let deep = switch_tree(&cfg, &[1, 1, 1]).unwrap();
        let t_flat = Simulation::from_topology(cfg.clone(), &flat)
            .unwrap()
            .run_gemm(GemmSpec::square(64))
            .unwrap()
            .total_time_ns();
        let t_deep = Simulation::from_topology(cfg, &deep)
            .unwrap()
            .run_gemm(GemmSpec::square(64))
            .unwrap()
            .total_time_ns();
        assert!(
            t_deep > t_flat,
            "3-level tree ({t_deep} ns) should be slower than flat ({t_flat} ns)"
        );
    }

    #[test]
    fn devmem_tree_runs_cpu_streaming_workloads() {
        // Regression: CPU-side Non-GEMM streams used to target the
        // monolithic DEVMEM_ACT_BASE, which no switch port claims in a
        // per-slice tree — the request bounced between RC and switch
        // until the route stack overflowed. The tree lowering now pins
        // the activation window inside a claimed slice.
        let cfg = SystemConfig::devmem(MemTech::Hbm2);
        let spec = switch_tree(&cfg, &[2]).unwrap();
        let mut sim = Simulation::from_topology(cfg, &spec).unwrap();
        let ns = sim.run_stream(1 << 20, 1 << 20, 0).unwrap();
        assert!(ns > 0.0);
        let report = sim.run_vit_layer(VitModel::Base).unwrap();
        assert!(report.non_gemm_ns() > 0.0);
        // The streams really hit device memory, not host DRAM.
        assert!(report.stats.get_or_zero("dev_mem0.bytes") > 0.0);
    }

    #[test]
    fn heterogeneous_tree_splits_traffic_by_placement() {
        let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
        cfg.smmu = None;
        let spec = switch_tree_with(&cfg, &[2], |i| EndpointOptions {
            accel: None,
            dev_mem: (i == 1).then_some(MemBackendConfig::Dram(MemTech::Hbm2)),
        })
        .unwrap();
        assert!(matches!(
            spec.devices()[1].data,
            DataPlacement::Device { .. }
        ));
        let mut sim = Simulation::from_topology(cfg, &spec).unwrap();
        let report = sim.run_gemm_sharded(GemmSpec::square(128)).unwrap();
        assert_eq!(report.jobs.len(), 2);
        // Device 0 pulled its shard over PCIe; device 1 from local memory.
        assert!(report.stats.get_or_zero("pcie.ep0.reads_sent") > 0.0);
        assert!(report.stats.get_or_zero("dev_mem1.bytes") > 0.0);
        assert_eq!(report.stats.get_or_zero("pcie.ep1.reads_sent"), 0.0);
    }
}
