//! The dependency-driven workload dispatcher: executes a
//! [`TaskGraph`](accesys_workload::graph::TaskGraph) on a built
//! [`Simulation`].
//!
//! The dispatcher is the workload-side mirror of the topology engine: it
//! walks the typed task graph and *compiles* it into the driver
//! machinery the CPU model already has — synchronous
//! [`CpuOp::LaunchJob`] doorbells, asynchronous
//! [`CpuOp::LaunchAsync`]/[`CpuOp::WaitAll`] cookie fan-out, and
//! [`CpuOp::Stream`] kernels — so CPU streaming overlaps with in-flight
//! accelerator jobs and independent GEMMs spread across idle devices.
//!
//! ## Readiness and issue rules (the determinism contract)
//!
//! Compilation is a fixed-point loop over the graph; every choice is a
//! deterministic function of the graph and the device count, so the same
//! graph on the same topology always produces the same program — and
//! therefore the same simulation, bit for bit, regardless of sweep
//! worker counts:
//!
//! 1. **Barriers** settle the moment their dependencies complete; they
//!    cost nothing and emit nothing.
//! 2. **Synchronous fast path**: when exactly one GEMM is ready, no CPU
//!    task is ready and nothing is in flight, it is issued as a blocking
//!    `LaunchJob` — exactly the program the pre-graph sequential drivers
//!    emitted, which is what keeps chain lowerings byte-identical to
//!    them.
//! 3. **GEMM issue**: every ready GEMM is issued `LaunchAsync`, in task-id
//!    order, to its pinned device if idle, or (for
//!    [`Affinity::AnyAccel`]) to the lowest-index idle device. Ready
//!    GEMMs that find no idle eligible device stay pending.
//! 4. **CPU issue**: every ready `Stream`/`Transfer` task then runs
//!    inline, in task-id order — the CPU streams while the launched jobs
//!    are still in flight.
//! 5. **Wait**: when nothing can issue, the dispatcher looks at the
//!    smallest-id blocked task whose unmet dependencies are all in
//!    flight. If that task joins *everything* in flight (a fork-join
//!    barrier), it emits one `WaitAll` over all cookies — the old
//!    sharded driver's program. Otherwise it waits on the
//!    earliest-issued in-flight cookie only (FIFO): launch order
//!    approximates completion order, so the CPU wakes as early as
//!    possible and issues freshly ready work, keeping independent
//!    pipeline chains advancing instead of letting one starve the
//!    others. With no blocked-but-waitable task it drains every
//!    in-flight cookie. Waited devices become idle again.
//!
//! Activation addresses for `Stream`/`Transfer` tasks come from the
//! topology's claimed activation windows
//! ([`crate::addrmap::act_windows`]). Activation buffers are transient,
//! so when the next task would not fit the cursor wraps to the window
//! base (buffer reuse) — long op lists never walk out of the claimed
//! window, which on device-memory trees used to end in a route-stack
//! panic. A single task larger than the whole window can never fit and
//! is rejected at compile time with [`RunError::ActWindowOverflow`] —
//! no event is simulated.

use crate::system::Simulation;
use crate::{RunError, RunReport, VitReport};
use accesys_accel::AccelJob;
use accesys_cpu::CpuOp;
use accesys_sim::{units, Tick};
use accesys_workload::graph::{Affinity, TaskGraph, TaskId, TaskKind};

/// How the dispatcher scheduled one graph: compile-time facts, useful
/// for asserting overlap in tests and reporting scheduling shape in
/// experiments. Fully deterministic for a given graph × topology.
#[derive(Copy, Clone, Debug, Default, serde::Serialize)]
pub struct DispatchPlan {
    /// Tasks in the graph.
    pub tasks: usize,
    /// Accelerator jobs issued (sync + async).
    pub launches: u64,
    /// Jobs issued through the synchronous `LaunchJob` fast path.
    pub sync_launches: u64,
    /// Jobs issued `LaunchAsync` (overlappable).
    pub async_launches: u64,
    /// `WaitAll` joins emitted.
    pub waits: u64,
    /// CPU streaming tasks run.
    pub streams: u64,
    /// Inter-stage transfer tasks run.
    pub transfers: u64,
    /// Barriers settled.
    pub barriers: u64,
    /// Peak accelerator jobs simultaneously in flight.
    pub max_in_flight: usize,
}

/// A graph compiled against a concrete simulation: the CPU program, the
/// accelerator jobs to enqueue (in issue order), and the plan counters.
pub(crate) struct CompiledGraph {
    pub program: Vec<CpuOp>,
    pub jobs: Vec<(usize, AccelJob)>,
    pub plan: DispatchPlan,
}

/// One timed dispatch: everything [`Simulation::run_graph_planned`]
/// reports plus the absolute kernel ticks that anchor it on the shared
/// simulation clock — the serving layer's admission points. The kernel
/// clock is monotone across successive dispatches on the same
/// [`Simulation`], so `start`/`end` of consecutive rounds tile the
/// timeline and `completions` place individual requests inside it.
#[derive(Clone, Debug)]
pub struct GraphRun {
    /// Phase/job/stat report, exactly as [`Simulation::run_graph`].
    pub report: VitReport,
    /// Compile-time scheduling shape.
    pub plan: DispatchPlan,
    /// Kernel tick at which the compiled program started.
    pub start: Tick,
    /// Kernel tick at which the last task retired (program end).
    pub end: Tick,
    /// `(label, tick)` for every completion-labeled task
    /// ([`TaskGraph::set_completion`]), at the absolute tick the host
    /// retired it — observed its MSI at a wait point, finished its
    /// stream, or settled it as a barrier. Host retirement, not device
    /// completion: a job whose MSI was latched while the CPU waited
    /// elsewhere completes when the CPU reaches its wait point, which
    /// is when a real driver would return the response.
    pub completions: Vec<(String, Tick)>,
}

struct InFlight {
    task: TaskId,
    cookie: u64,
    device: usize,
}

impl Simulation {
    /// Compile `graph` into a CPU program + job enqueue list without
    /// touching the kernel or the cookie counter (so a compile error
    /// leaves the simulation untouched — a retry compiles the exact
    /// same program a fresh simulation would).
    pub(crate) fn compile_graph(&mut self, graph: &TaskGraph) -> Result<CompiledGraph, RunError> {
        graph
            .validate(self.accel_count())
            .map_err(|e| RunError::InvalidGraph(e.to_string()))?;
        let n = graph.len();
        let (read_win, write_win) = self.act_windows();
        let read_limit = read_win.base + read_win.size;
        let write_limit = write_win.base + write_win.size;
        let mut read_cursor = read_win.base;
        let mut write_cursor = write_win.base;
        let mut done = vec![false; n];
        let mut issued = vec![false; n];
        let mut done_count = 0usize;
        let mut busy = vec![false; self.accel_count()];
        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut program: Vec<CpuOp> = Vec::new();
        let mut jobs: Vec<(usize, AccelJob)> = Vec::new();
        // Cookies are drawn from a local counter and committed to the
        // simulation only on success, so a failed compile consumes none
        // (same sequence as Simulation::alloc_cookie).
        let cookie_base = self.peek_cookie();
        let mut next_cookie = 0u64;
        let mut alloc_cookie = move || {
            let c = (cookie_base + next_cookie) % 1000;
            next_cookie += 1;
            c
        };
        let mut plan = DispatchPlan {
            tasks: n,
            ..DispatchPlan::default()
        };
        let deps_met = |done: &[bool], t: TaskId| graph.task(t).deps.iter().all(|&d| done[d]);
        // Completion-labeled tasks get a `done:<label>` mark at the
        // program position where the host retires them, so the mark
        // timeline carries absolute completion ticks. Unlabeled graphs
        // emit nothing — their programs stay byte-identical.
        let mark_done = |program: &mut Vec<CpuOp>, t: TaskId| {
            if let Some(label) = &graph.task(t).completion {
                program.push(CpuOp::Mark {
                    label: format!("done:{label}"),
                });
            }
        };

        while done_count < n {
            // 1. Settle ready barriers to fixpoint (zero-cost joins).
            let mut settled = true;
            while settled {
                settled = false;
                for t in 0..n {
                    if !done[t]
                        && matches!(graph.task(t).kind, TaskKind::Barrier)
                        && deps_met(&done, t)
                    {
                        done[t] = true;
                        done_count += 1;
                        plan.barriers += 1;
                        mark_done(&mut program, t);
                        settled = true;
                    }
                }
            }
            if done_count == n {
                break;
            }

            let ready_gemms: Vec<TaskId> = (0..n)
                .filter(|&t| {
                    !done[t]
                        && !issued[t]
                        && matches!(graph.task(t).kind, TaskKind::Gemm(_))
                        && deps_met(&done, t)
                })
                .collect();
            let ready_cpu: Vec<TaskId> = (0..n)
                .filter(|&t| {
                    !done[t]
                        && matches!(
                            graph.task(t).kind,
                            TaskKind::Stream { .. } | TaskKind::Transfer { .. }
                        )
                        && deps_met(&done, t)
                })
                .collect();

            // 2. Synchronous fast path: a lone ready GEMM with nothing
            // else to do or wait for — the sequential drivers' shape.
            if in_flight.is_empty() && ready_cpu.is_empty() && ready_gemms.len() == 1 {
                let t = ready_gemms[0];
                let TaskKind::Gemm(spec) = graph.task(t).kind else {
                    unreachable!("ready_gemms holds GEMMs");
                };
                let dev = match graph.task(t).affinity {
                    Affinity::Pinned(d) => d,
                    Affinity::AnyAccel => 0,
                };
                let cookie = alloc_cookie();
                jobs.push((dev, self.layout_job(&spec, cookie, None, dev)));
                program.push(CpuOp::Mark {
                    label: format!("gemm:{}", graph.task(t).name),
                });
                program.push(CpuOp::LaunchJob {
                    doorbell_addr: self.device(dev).doorbell,
                    job_cookie: cookie,
                });
                plan.launches += 1;
                plan.sync_launches += 1;
                issued[t] = true;
                done[t] = true;
                done_count += 1;
                // LaunchJob blocks until the MSI: retired right here.
                mark_done(&mut program, t);
                continue;
            }

            let mut advanced = false;
            // 3. Issue every ready GEMM that can get an idle eligible
            // device, in task-id order.
            for &t in &ready_gemms {
                let TaskKind::Gemm(spec) = graph.task(t).kind else {
                    unreachable!("ready_gemms holds GEMMs");
                };
                let dev = match graph.task(t).affinity {
                    Affinity::Pinned(d) => (!busy[d]).then_some(d),
                    Affinity::AnyAccel => busy.iter().position(|&b| !b),
                };
                let Some(dev) = dev else {
                    continue; // no idle eligible device: stays pending
                };
                let cookie = alloc_cookie();
                jobs.push((dev, self.layout_job(&spec, cookie, None, dev)));
                program.push(CpuOp::Mark {
                    label: format!("gemm:{}", graph.task(t).name),
                });
                program.push(CpuOp::LaunchAsync {
                    doorbell_addr: self.device(dev).doorbell,
                });
                busy[dev] = true;
                in_flight.push(InFlight {
                    task: t,
                    cookie,
                    device: dev,
                });
                issued[t] = true;
                plan.launches += 1;
                plan.async_launches += 1;
                plan.max_in_flight = plan.max_in_flight.max(in_flight.len());
                advanced = true;
            }
            // 4. Run every ready CPU task inline: these stream while the
            // jobs issued above are in flight.
            for &t in &ready_cpu {
                let task = graph.task(t);
                let (label, rb, wb, flops) = match task.kind {
                    TaskKind::Stream {
                        read_bytes,
                        write_bytes,
                        flops,
                    } => {
                        plan.streams += 1;
                        (
                            format!("nongemm:{}", task.name),
                            read_bytes,
                            write_bytes,
                            flops,
                        )
                    }
                    TaskKind::Transfer { bytes } => {
                        plan.transfers += 1;
                        (format!("xfer:{}", task.name), bytes, bytes, 0)
                    }
                    _ => unreachable!("ready_cpu holds Stream/Transfer"),
                };
                // Activation buffers are transient: when the next task
                // would not fit, its cursor wraps to the window base
                // (buffer reuse), so long op lists stay inside the
                // claimed window instead of silently walking out of it.
                // A single task bigger than the whole window can never
                // fit and is a typed error.
                if rb > read_win.size {
                    return Err(RunError::ActWindowOverflow {
                        window: "read",
                        needed_end: read_win.base + rb,
                        limit: read_limit,
                    });
                }
                if wb > write_win.size {
                    return Err(RunError::ActWindowOverflow {
                        window: "write",
                        needed_end: write_win.base + wb,
                        limit: write_limit,
                    });
                }
                if read_cursor + rb > read_limit {
                    read_cursor = read_win.base;
                }
                if write_cursor + wb > write_limit {
                    write_cursor = write_win.base;
                }
                program.push(CpuOp::Mark { label });
                program.push(CpuOp::Stream {
                    read_bytes: rb,
                    write_bytes: wb,
                    flops,
                    read_addr: read_cursor,
                    write_addr: write_cursor,
                });
                read_cursor += rb;
                write_cursor += wb;
                done[t] = true;
                done_count += 1;
                // Stream ops block the CPU: retired when they return.
                mark_done(&mut program, t);
                advanced = true;
            }
            if advanced {
                continue;
            }

            // 5. Blocked: pick a wait set. When the smallest-id blocked
            // task needs *everything* in flight (a join), one WaitAll
            // over all cookies reproduces the old fork-join drivers.
            // Otherwise drain the earliest-issued cookie only (FIFO):
            // launch order approximates completion order, so the CPU
            // wakes as early as possible and re-issues freshly ready
            // work — this is what keeps independent pipelines advancing
            // instead of one chain starving the others.
            let target = (0..n).find(|&t| {
                !done[t]
                    && !issued[t]
                    && graph.task(t).deps.iter().any(|&d| !done[d])
                    && graph
                        .task(t)
                        .deps
                        .iter()
                        .all(|&d| done[d] || in_flight.iter().any(|f| f.task == d))
            });
            let waiting: Vec<usize> = match target {
                Some(t) => {
                    let dep_set: Vec<usize> = in_flight
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| graph.task(t).deps.contains(&f.task))
                        .map(|(i, _)| i)
                        .collect();
                    if dep_set.len() == in_flight.len() {
                        dep_set
                    } else {
                        vec![0]
                    }
                }
                None => (0..in_flight.len()).collect(),
            };
            if waiting.is_empty() {
                // Validation excludes cycles and bad pins, so a block
                // with nothing in flight cannot happen; guard anyway so
                // a future bug errors instead of spinning forever.
                return Err(RunError::InvalidGraph(
                    "dispatcher deadlock: tasks remain but nothing is in flight".into(),
                ));
            }
            program.push(CpuOp::WaitAll {
                cookies: waiting.iter().map(|&i| in_flight[i].cookie).collect(),
            });
            plan.waits += 1;
            let mut retired: Vec<TaskId> = Vec::with_capacity(waiting.len());
            for &i in waiting.iter().rev() {
                let f = in_flight.remove(i);
                busy[f.device] = false;
                done[f.task] = true;
                done_count += 1;
                retired.push(f.task);
            }
            // The whole wait set retires at the WaitAll's return; marks
            // go out in task-id order so the timeline is deterministic.
            retired.sort_unstable();
            for t in retired {
                mark_done(&mut program, t);
            }
        }

        // Drain any in-flight jobs nothing depended on.
        if !in_flight.is_empty() {
            program.push(CpuOp::WaitAll {
                cookies: in_flight.iter().map(|f| f.cookie).collect(),
            });
            plan.waits += 1;
            let mut retired: Vec<TaskId> = in_flight.iter().map(|f| f.task).collect();
            retired.sort_unstable();
            for t in retired {
                mark_done(&mut program, t);
            }
        }
        Ok(CompiledGraph {
            program,
            jobs,
            plan,
        })
    }

    /// Execute `graph` on this system: compile it (validating structure
    /// and activation windows), enqueue the accelerator jobs, run the
    /// CPU program to completion, and report phases/jobs/stats exactly
    /// like the layer drivers do.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidGraph`] or
    /// [`RunError::ActWindowOverflow`] at compile time (no events
    /// simulated), or any simulation [`RunError`] from the run itself.
    pub fn run_graph(&mut self, graph: &TaskGraph) -> Result<VitReport, RunError> {
        self.run_graph_planned(graph).map(|(report, _)| report)
    }

    /// [`Simulation::run_graph`] returning the [`DispatchPlan`] next to
    /// the report, for callers that assert on scheduling shape.
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_graph`].
    pub fn run_graph_planned(
        &mut self,
        graph: &TaskGraph,
    ) -> Result<(VitReport, DispatchPlan), RunError> {
        self.run_graph_timed(graph).map(|r| (r.report, r.plan))
    }

    /// [`Simulation::run_graph_planned`] plus the absolute kernel ticks
    /// of the run and of every completion-labeled task
    /// ([`TaskGraph::set_completion`]) — see [`GraphRun`]. The serving
    /// layer uses this to place request completions on the shared
    /// simulation clock across successive batching rounds.
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_graph`].
    pub fn run_graph_timed(&mut self, graph: &TaskGraph) -> Result<GraphRun, RunError> {
        let compiled = self.compile_graph(graph)?;
        self.commit_cookies(compiled.plan.launches);
        let before = self.record_marks();
        for (dev, job) in compiled.jobs {
            self.enqueue(job, dev);
        }
        let start = self.kernel().now();
        let (elapsed, marks) = self.run_program(compiled.program)?;
        let mut phases = Vec::new();
        for pair in marks.windows(2) {
            let (label, t0) = (&pair[0].0, pair[0].1);
            let t1 = pair[1].1;
            phases.push((label.clone(), units::to_ns(t1 - t0)));
        }
        let completions = marks
            .iter()
            .filter_map(|(label, tick)| label.strip_prefix("done:").map(|l| (l.to_string(), *tick)))
            .collect();
        Ok(GraphRun {
            report: VitReport {
                total_ticks: elapsed,
                phases,
                jobs: self.records_since(&before),
                stats: self.stats(),
            },
            plan: compiled.plan,
            start,
            end: start + elapsed,
            completions,
        })
    }

    /// Execute `graph` and report as a [`RunReport`] (GEMM-shaped
    /// workloads: fork-join shards, multi-GEMM mixes).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_graph`].
    pub fn run_graph_gemm(&mut self, graph: &TaskGraph) -> Result<RunReport, RunError> {
        let report = self.run_graph(graph)?;
        Ok(RunReport {
            total_ticks: report.total_ticks,
            jobs: report.jobs,
            smmu: self.smmu_stats(),
            stats: report.stats,
        })
    }

    /// Open an incremental dispatch session: the serving engines extend
    /// the timeline one round graph at a time through it. See
    /// [`GraphSession`].
    pub fn graph_session(&mut self) -> GraphSession<'_> {
        let start = self.kernel().now();
        GraphSession {
            sim: self,
            rounds: 0,
            start,
            last_end: start,
        }
    }
}

/// An incremental dispatch session: successive [`GraphSession::extend`]
/// calls append round graphs to one simulation's timeline.
///
/// This is how the serving layer generates per-round shapes
/// *incrementally* — the next round's graph (which requests decode,
/// what their KV pressure transfers look like) is only known once the
/// previous round's barrier has settled, so the graph cannot be built
/// ahead of time. The session pins the contract that makes the round
/// sequence composable:
///
/// * **Monotone clock** — round `k+1` starts exactly where round `k`
///   ended (the kernel clock never rewinds between extends; asserted,
///   so a regression fails loudly instead of silently folding time).
/// * **Deterministic** — an extend is [`Simulation::run_graph_timed`]
///   on the shared simulation: same session, same graph sequence, same
///   ticks, byte for byte.
///
/// ```
/// use accesys::{Simulation, SystemConfig};
/// use accesys_workload::graph::op_chain;
/// use accesys_workload::{encoder_ops, VitModel};
///
/// let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
/// let graph = op_chain(&encoder_ops(16, 64, 4, 128));
/// let mut session = sim.graph_session();
/// let a = session.extend(&graph).unwrap();
/// let b = session.extend(&graph).unwrap();
/// assert_eq!(session.rounds(), 2);
/// assert!(b.start >= a.end, "rounds tile the timeline");
/// ```
pub struct GraphSession<'a> {
    sim: &'a mut Simulation,
    rounds: u64,
    start: Tick,
    last_end: Tick,
}

impl GraphSession<'_> {
    /// Dispatch one more round graph at the current kernel tick.
    ///
    /// # Errors
    ///
    /// As [`Simulation::run_graph`]; a failed extend consumes no
    /// cookies and does not count as a round.
    ///
    /// # Panics
    ///
    /// Panics if the kernel clock ran backwards between rounds — a
    /// broken invariant, not an input error.
    pub fn extend(&mut self, graph: &TaskGraph) -> Result<GraphRun, RunError> {
        let run = self.sim.run_graph_timed(graph)?;
        assert!(
            run.start >= self.last_end,
            "graph session clock ran backwards: round {} started at {} before the previous end {}",
            self.rounds,
            run.start,
            self.last_end,
        );
        self.rounds += 1;
        self.last_end = run.end;
        Ok(run)
    }

    /// Rounds extended so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Kernel tick the session opened at.
    pub fn opened_at(&self) -> Tick {
        self.start
    }

    /// Kernel tick the last round ended at (the session open tick
    /// before any round).
    pub fn now(&self) -> Tick {
        self.last_end
    }

    /// Accelerators of the underlying simulation (engines size their
    /// batches and KV device choices off this).
    pub fn accel_count(&self) -> usize {
        self.sim.accel_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{switch_tree, switch_tree_with, EndpointOptions};
    use crate::{MemBackendConfig, SystemConfig};
    use accesys_mem::MemTech;
    use accesys_workload::graph::{
        gemm_fork_join, head_parallel_attention, op_chain, pipelined_encoder, two_tenant_mix,
        PipelineSpec, TaskGraph,
    };
    use accesys_workload::{encoder_ops, BertModel, GemmSpec, VitModel};

    /// A multi-accelerator tree where device parallelism can actually
    /// show: every leaf holds its working set in local device memory (no
    /// shared-uplink serialization of job DMA), compute is pinned at a
    /// fixed per-job cost, and CPU activations stay in fast host DRAM.
    fn tree_sim(levels: &[u32]) -> Simulation {
        let mut cfg =
            SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(50_000.0);
        cfg.smmu = None;
        let spec = switch_tree_with(&cfg, levels, |_| EndpointOptions {
            accel: None,
            dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
        })
        .expect("valid tree");
        Simulation::from_topology(cfg, &spec).expect("valid topology")
    }

    /// A small synthetic encoder pipeline (fast to simulate).
    fn small_pipeline(images: u32, devices: usize) -> TaskGraph {
        pipelined_encoder(
            64,
            128,
            4,
            512,
            &PipelineSpec {
                layers: 4,
                images,
                devices,
            },
        )
    }

    #[test]
    fn invalid_graphs_are_rejected_before_any_event() {
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let mut g = TaskGraph::new();
        let a = g.add(
            "a",
            TaskKind::Gemm(GemmSpec::square(32)),
            Affinity::AnyAccel,
            vec![],
        );
        let b = g.add(
            "b",
            TaskKind::Gemm(GemmSpec::square(32)),
            Affinity::AnyAccel,
            vec![a],
        );
        g.add_dep(a, b);
        let err = sim.run_graph(&g).unwrap_err();
        assert!(matches!(err, RunError::InvalidGraph(_)), "got {err}");
        // Nothing ran: the kernel clock never moved.
        assert_eq!(sim.kernel().now(), 0);
    }

    #[test]
    fn act_cursors_never_walk_out_of_the_claimed_window() {
        // Regression: the sequential driver advanced its activation
        // cursors unchecked, so a large-enough op list silently walked
        // out of the claimed window (on devmem trees that ends in a
        // route-stack panic). The dispatcher wraps cursors at the
        // window end instead (activation buffers are transient), so
        // every compiled address stays inside the claimed split.
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let (read_win, write_win) = sim.act_windows();
        let mut g = TaskGraph::new();
        let half = crate::addrmap::ACT_SPLIT / 2;
        let mut prev = None;
        for i in 0..5 {
            let deps = prev.into_iter().collect();
            prev = Some(g.add(
                format!("s{i}"),
                TaskKind::Stream {
                    read_bytes: half,
                    write_bytes: half,
                    flops: 0,
                },
                Affinity::AnyAccel,
                deps,
            ));
        }
        let compiled = sim.compile_graph(&g).unwrap();
        let mut streams = 0;
        for op in &compiled.program {
            if let CpuOp::Stream {
                read_addr,
                write_addr,
                read_bytes,
                write_bytes,
                ..
            } = op
            {
                streams += 1;
                assert!(read_addr + read_bytes <= read_win.base + read_win.size);
                assert!(write_addr + write_bytes <= write_win.base + write_win.size);
                assert!(*read_addr >= read_win.base && *write_addr >= write_win.base);
            }
        }
        assert_eq!(streams, 5);
        // The third stream wrapped back to the window base.
        let CpuOp::Stream { read_addr, .. } = &compiled.program[2 * 2 + 1] else {
            panic!("stream op expected");
        };
        assert_eq!(*read_addr, read_win.base, "third stream wraps");
        // …and the wrapped program really runs.
        assert!(sim.run_graph(&g).unwrap().total_time_ns() > 0.0);
    }

    #[test]
    fn oversized_single_streams_are_a_typed_error() {
        // A single task bigger than the whole window can never fit:
        // typed error at compile time, no event simulated.
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let mut g = TaskGraph::new();
        g.add(
            "huge",
            TaskKind::Stream {
                read_bytes: crate::addrmap::ACT_SPLIT + 1,
                write_bytes: 0,
                flops: 0,
            },
            Affinity::AnyAccel,
            vec![],
        );
        let err = sim.run_graph(&g).unwrap_err();
        assert!(
            matches!(err, RunError::ActWindowOverflow { window: "read", .. }),
            "got {err}"
        );
        assert_eq!(sim.kernel().now(), 0, "rejected before any event");
        // The single-stream entry point is bounds-checked the same way.
        let err = sim
            .run_stream(0, crate::addrmap::ACT_SPLIT + 1, 0)
            .unwrap_err();
        assert!(
            matches!(
                err,
                RunError::ActWindowOverflow {
                    window: "write",
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn failed_compiles_consume_no_cookies() {
        // A rejected graph must leave the simulation exactly as a fresh
        // one: the next successful run draws the same cookie sequence
        // (cookies feed MSI addresses and JobRecord JSON).
        let mut fresh = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let mut used = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let mut bad = TaskGraph::new();
        bad.add(
            "g",
            TaskKind::Gemm(GemmSpec::square(32)),
            Affinity::AnyAccel,
            vec![],
        );
        bad.add(
            "huge",
            TaskKind::Stream {
                read_bytes: crate::addrmap::ACT_SPLIT + 1,
                write_bytes: 0,
                flops: 0,
            },
            Affinity::AnyAccel,
            vec![0],
        );
        assert!(used.run_graph(&bad).is_err());
        let ok = op_chain(&encoder_ops(64, 128, 4, 512));
        let a = fresh.run_graph(&ok).unwrap();
        let b = used.run_graph(&ok).unwrap();
        let cookies = |r: &crate::VitReport| r.jobs.iter().map(|j| j.cookie).collect::<Vec<_>>();
        assert_eq!(cookies(&a), cookies(&b));
    }

    #[test]
    fn paper_scale_full_models_compile_within_the_window() {
        // Full ViT-Large/Huge graphs and paper-scale pipeline chains
        // exceed 128 MiB of activations; the wrap keeps them
        // compilable (pre-wrap this was a guaranteed error).
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        for model in [VitModel::Large, VitModel::Huge] {
            let ops = accesys_workload::vit_full_ops(model);
            let compiled = sim.compile_graph(&op_chain(&ops)).unwrap();
            assert!(!compiled.program.is_empty(), "{model} compiles");
        }
    }

    #[test]
    fn devmem_tree_write_window_is_clamped_to_the_claimed_slice() {
        // On a per-slice devmem tree the write window ends at the slice
        // boundary — the old driver would have streamed into unclaimed
        // addresses and panicked the route stack.
        let cfg = SystemConfig::devmem(MemTech::Hbm2);
        let spec = switch_tree(&cfg, &[2]).unwrap();
        let mut sim = Simulation::from_topology(cfg, &spec).unwrap();
        let (_, write_win) = sim.act_windows();
        assert!(write_win.size < crate::addrmap::ACT_SPLIT);
        let err = sim.run_stream(0, write_win.size + 1, 0).unwrap_err();
        assert!(matches!(err, RunError::ActWindowOverflow { .. }), "{err}");
        // Within the clamped window it still runs (and over real wires).
        assert!(sim.run_stream(1 << 20, 1 << 20, 0).unwrap() > 0.0);
    }

    #[test]
    fn chain_graphs_issue_synchronously_like_the_sequential_driver() {
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let ops = encoder_ops(64, 128, 4, 512);
        let (report, plan) = sim.run_graph_planned(&op_chain(&ops)).unwrap();
        assert_eq!(plan.sync_launches, plan.launches);
        assert_eq!(plan.async_launches, 0);
        assert_eq!(plan.waits, 0);
        assert_eq!(plan.max_in_flight, 0);
        assert!(report.gemm_ns() > 0.0 && report.non_gemm_ns() > 0.0);
    }

    #[test]
    fn fork_join_graphs_fan_out_like_the_old_sharded_loop() {
        let mut sim = tree_sim(&[4]);
        let (report, plan) = sim
            .run_graph_planned(&gemm_fork_join(GemmSpec::square(256), 4))
            .unwrap();
        assert_eq!(plan.async_launches, 4);
        assert_eq!(plan.max_in_flight, 4);
        assert_eq!(plan.waits, 1);
        assert_eq!(plan.barriers, 1);
        assert_eq!(report.jobs.len(), 4);
    }

    #[test]
    fn pipelined_encoder_beats_the_sequential_chain_on_a_tree() {
        // Same total work, two schedules: a chain through device 0 vs a
        // 4-stage pipeline over 4 leaves with 3 images in flight.
        let images = 3u32;
        let chain_ops: Vec<_> = (0..images * 4)
            .flat_map(|_| encoder_ops(64, 128, 4, 512))
            .collect();
        let mut seq_sim = tree_sim(&[4]);
        let seq = seq_sim.run_graph(&op_chain(&chain_ops)).unwrap();

        let mut pipe_sim = tree_sim(&[4]);
        let (pipe, plan) = pipe_sim
            .run_graph_planned(&small_pipeline(images, 4))
            .unwrap();
        assert!(
            plan.max_in_flight >= 2,
            "pipeline never overlapped devices: {plan:?}"
        );
        assert!(plan.transfers > 0, "no inter-stage handoffs: {plan:?}");
        assert!(pipe.transfer_ns() > 0.0);
        let speedup = seq.total_time_ns() / pipe.total_time_ns();
        assert!(
            speedup > 1.2,
            "pipelining should beat the chain, got {speedup:.2}x \
             (seq {:.0} ns, pipe {:.0} ns)",
            seq.total_time_ns(),
            pipe.total_time_ns()
        );
        // Every leaf did real work.
        for i in 0..4 {
            assert!(
                pipe.stats.get_or_zero(&format!("accel{i}.jobs_done")) >= 1.0,
                "leaf {i} idle"
            );
        }
    }

    #[test]
    fn head_parallel_attention_spreads_heads_over_the_pool() {
        let mut sim = tree_sim(&[2, 2]);
        let (report, plan) = sim
            .run_graph_planned(&head_parallel_attention(VitModel::Base))
            .unwrap();
        assert!(
            plan.max_in_flight >= 2,
            "heads never ran concurrently: {plan:?}"
        );
        // All four leaves picked up head work (AnyAccel round-robin).
        for i in 0..4 {
            assert!(
                report.stats.get_or_zero(&format!("accel{i}.jobs_done")) >= 1.0,
                "leaf {i} idle"
            );
        }
        // 12 heads × (scores + attnv) + qkv + proj + fc1 + fc2.
        assert_eq!(report.jobs.len(), 2 * 12 + 4);
    }

    #[test]
    fn two_tenant_mix_interleaves_on_shared_devices() {
        let mut sim = tree_sim(&[2]);
        let (report, plan) = sim
            .run_graph_planned(&two_tenant_mix(VitModel::Base, BertModel::Base, 128))
            .unwrap();
        // The two tenant chains overlap on the two devices.
        assert!(
            plan.max_in_flight == 2,
            "tenants never overlapped: {plan:?}"
        );
        assert!(report.total_time_ns() > 0.0);
        assert!(report.stats.get_or_zero("accel0.jobs_done") >= 1.0);
        assert!(report.stats.get_or_zero("accel1.jobs_done") >= 1.0);
    }

    #[test]
    fn completion_marks_place_tasks_on_the_kernel_clock() {
        // A fork of two pinned GEMMs and a labeled barrier: the labeled
        // tasks' completion ticks must land inside the run's [start, end]
        // window, in dependency order, and the unlabeled graph's program
        // must stay mark-free (byte-identical contract).
        let mut sim = tree_sim(&[2]);
        let mut g = TaskGraph::new();
        let a = g.add(
            "a",
            TaskKind::Gemm(GemmSpec::square(64)),
            Affinity::Pinned(0),
            vec![],
        );
        let b = g.add(
            "b",
            TaskKind::Gemm(GemmSpec::square(64)),
            Affinity::Pinned(1),
            vec![],
        );
        let bar = g.add("join", TaskKind::Barrier, Affinity::AnyAccel, vec![a, b]);
        g.set_completion(a, "req0");
        g.set_completion(b, "req1");
        g.set_completion(bar, "round");
        let run = sim.run_graph_timed(&g).unwrap();
        assert_eq!(run.completions.len(), 3);
        let tick_of = |label: &str| {
            run.completions
                .iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("completion {label} recorded"))
                .1
        };
        for (_, t) in &run.completions {
            assert!(run.start <= *t && *t <= run.end);
        }
        // The barrier settles when both forks are retired.
        assert!(tick_of("round") >= tick_of("req0").max(tick_of("req1")));
        // Unlabeled: no done: marks anywhere in the compiled program.
        let mut unlabeled = tree_sim(&[2]);
        let mut g2 = TaskGraph::new();
        g2.add(
            "a",
            TaskKind::Gemm(GemmSpec::square(64)),
            Affinity::Pinned(0),
            vec![],
        );
        let run2 = unlabeled.run_graph_timed(&g2).unwrap();
        assert!(run2.completions.is_empty());
        assert!(run2
            .report
            .phases
            .iter()
            .all(|(label, _)| !label.starts_with("done:")));
    }

    #[test]
    fn completion_marks_ride_the_sync_fast_path_too() {
        // A pure chain takes the blocking LaunchJob path; a labeled tail
        // still reports its retirement tick (== run end here).
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let ops = encoder_ops(64, 128, 4, 512);
        let mut g = op_chain(&ops);
        let tail = g.len() - 1;
        g.set_completion(tail, "req0");
        let run = sim.run_graph_timed(&g).unwrap();
        assert_eq!(run.completions.len(), 1);
        assert_eq!(run.completions[0].0, "req0");
        assert_eq!(run.completions[0].1, run.end);
    }

    #[test]
    fn kernel_clock_is_monotone_across_rounds() {
        // Successive dispatches on one simulation tile the timeline —
        // the property the serving layer's arrival clock builds on.
        let mut sim = tree_sim(&[2]);
        let mut last_end = 0;
        for i in 0..3 {
            let mut g = TaskGraph::new();
            let t = g.add(
                format!("r{i}"),
                TaskKind::Gemm(GemmSpec::square(64)),
                Affinity::AnyAccel,
                vec![],
            );
            g.set_completion(t, format!("req{i}"));
            let run = sim.run_graph_timed(&g).unwrap();
            assert!(run.start >= last_end);
            assert!(run.end > run.start);
            last_end = run.end;
        }
    }

    #[test]
    fn pinned_tasks_queue_for_their_busy_device() {
        // Three independent GEMMs all pinned to device 0 of a 2-leaf
        // tree: they must serialize on device 0 and never touch device 1.
        let mut sim = tree_sim(&[2]);
        let mut g = TaskGraph::new();
        for i in 0..3 {
            g.add(
                format!("pin{i}"),
                TaskKind::Gemm(GemmSpec::square(64)),
                Affinity::Pinned(0),
                vec![],
            );
        }
        let (report, plan) = sim.run_graph_planned(&g).unwrap();
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(plan.max_in_flight, 1);
        assert_eq!(report.stats.get_or_zero("accel0.jobs_done"), 3.0);
        assert_eq!(report.stats.get_or_zero("accel1.jobs_done"), 0.0);
    }

    #[test]
    fn graph_sessions_tile_the_timeline_and_count_rounds() {
        let mut sim = tree_sim(&[2]);
        let mut session = sim.graph_session();
        assert_eq!(session.rounds(), 0);
        assert_eq!(session.now(), session.opened_at());
        assert_eq!(session.accel_count(), 2);
        let mut last_end = session.opened_at();
        for i in 0..3 {
            let mut g = TaskGraph::new();
            g.add(
                format!("r{i}"),
                TaskKind::Gemm(GemmSpec::square(64)),
                Affinity::AnyAccel,
                vec![],
            );
            let run = session.extend(&g).unwrap();
            assert!(run.start >= last_end);
            assert!(run.end > run.start);
            last_end = run.end;
        }
        assert_eq!(session.rounds(), 3);
        assert_eq!(session.now(), last_end);
    }

    #[test]
    fn graph_session_failed_extends_do_not_count() {
        let mut sim = tree_sim(&[2]);
        let mut session = sim.graph_session();
        assert!(session.extend(&TaskGraph::new()).is_err());
        assert_eq!(session.rounds(), 0, "failed extend is not a round");
        // The session still works afterwards (no cookies were burned).
        let g = op_chain(&encoder_ops(16, 64, 4, 128));
        assert!(session.extend(&g).is_ok());
        assert_eq!(session.rounds(), 1);
    }

    #[test]
    fn graph_session_matches_direct_dispatch() {
        // A session is sugar over run_graph_timed: the same graph
        // sequence on fresh simulations produces identical ticks.
        let g = small_pipeline(2, 2);
        let mut direct = tree_sim(&[2]);
        let a = direct.run_graph_timed(&g).unwrap();
        let b = direct.run_graph_timed(&g).unwrap();
        let mut sessioned = tree_sim(&[2]);
        let mut session = sessioned.graph_session();
        let sa = session.extend(&g).unwrap();
        let sb = session.extend(&g).unwrap();
        assert_eq!((sa.start, sa.end), (a.start, a.end));
        assert_eq!((sb.start, sb.end), (b.start, b.end));
    }
}
