//! System configuration: every knob the paper's evaluation sweeps.

use crate::BuildError;
use accesys_accel::AccelControllerConfig;
use accesys_cache::CacheConfig;
use accesys_cpu::CpuConfig;
use accesys_dma::DmaEngineConfig;
use accesys_interconnect::{
    FlitLinkConfig, PcieEndpointConfig, PcieLinkConfig, PcieSwitchConfig, RootComplexConfig,
    XbarConfig,
};
use accesys_mem::{MemTech, SimpleMemoryConfig};
use accesys_smmu::SmmuConfig;

/// How accelerator traffic reaches host memory (Section III-C).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum AccessMode {
    /// Direct-cache: accelerator requests traverse the IOCache and the
    /// coherent LLC before memory (the mode used by the evaluation).
    DirectCache,
    /// Direct-memory: requests bypass the cache hierarchy (software
    /// manages coherency).
    DirectMemory,
}

/// Which standard interconnect attaches the accelerator to the host.
///
/// The paper evaluates PCIe; the CXL.mem-style option is this
/// reproduction's extension of the same framework to the next standard
/// interconnect (fixed 68 B flits, no switch hop, low-latency host
/// bridge).
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub enum InterconnectKind {
    /// PCIe hierarchy: root complex → switch → endpoint (default).
    #[default]
    Pcie,
    /// CXL.mem-class point-to-point flit link: host bridge → endpoint.
    Cxl,
}

/// Where the accelerator's working set lives.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum MemoryLocation {
    /// Host DRAM, reached over PCIe.
    Host,
    /// Device-side memory next to the accelerator (the paper's DevMem,
    /// arrow 6 of Fig. 1).
    Device,
}

/// Host or device memory backend.
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum MemBackendConfig {
    /// gem5's default fixed-latency/bandwidth model (Fig. 6 sweeps).
    Simple(SimpleMemoryConfig),
    /// Ramulator-class bank/row timing model with a Table III preset.
    Dram(MemTech),
}

impl MemBackendConfig {
    /// Nominal peak bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        match self {
            MemBackendConfig::Simple(c) => c.bandwidth_gbps,
            MemBackendConfig::Dram(t) => t.bandwidth_gbps(),
        }
    }
}

/// The PCIe hierarchy configuration (both link directions share it).
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PcieConfig {
    /// Link (lanes × rate × encoding, credits, header overhead).
    pub link: PcieLinkConfig,
    /// Switch (50 ns store-and-forward in Table II).
    pub switch: PcieSwitchConfig,
    /// Root complex (150 ns in Table II).
    pub rc: RootComplexConfig,
    /// Endpoint (tag pool).
    pub ep: PcieEndpointConfig,
}

impl PcieConfig {
    /// Table II baseline: PCIe 2.0 ×4 ≈ 2 GB/s effective.
    pub fn gen2_x4() -> Self {
        PcieConfig {
            link: PcieLinkConfig::gen2_x4(),
            switch: PcieSwitchConfig::default(),
            rc: RootComplexConfig::default(),
            ep: PcieEndpointConfig::default(),
        }
    }

    /// A hierarchy tuned to an aggregate bandwidth in GB/s (the paper's
    /// "PCIe-8GB"-style configurations).
    pub fn with_bandwidth_gbps(gb_per_s: f64) -> Self {
        PcieConfig {
            link: PcieLinkConfig::with_bandwidth_gbps(gb_per_s),
            ..Self::gen2_x4()
        }
    }

    /// Effective link bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.link.bandwidth_gbps()
    }
}

/// Full system configuration (Fig. 1 of the paper).
///
/// ```
/// use accesys::SystemConfig;
///
/// let cfg = SystemConfig::paper_baseline();
/// assert!((cfg.pcie.bandwidth_gbps() - 2.0).abs() < 1e-9);
/// cfg.validate().expect("baseline is valid");
/// ```
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SystemConfig {
    /// CPU cluster.
    pub cpu: CpuConfig,
    /// CPU L1 data cache (Table II: 64 kB).
    pub l1d: CacheConfig,
    /// Shared last-level cache (Table II: 2 MB).
    pub llc: CacheConfig,
    /// IOCache in front of the LLC for accelerator traffic (32 kB).
    pub iocache: CacheConfig,
    /// Host memory backend (Table II: DDR3-1600).
    pub host_mem: MemBackendConfig,
    /// Device-side memory backend, when present.
    pub dev_mem: Option<MemBackendConfig>,
    /// Where the accelerator's working set lives.
    pub mem_location: MemoryLocation,
    /// DC or DM access (Section III-C).
    pub access_mode: AccessMode,
    /// Which standard interconnect carries accelerator traffic.
    pub interconnect: InterconnectKind,
    /// The PCIe hierarchy (used when `interconnect` is
    /// [`InterconnectKind::Pcie`]).
    pub pcie: PcieConfig,
    /// The CXL flit link (used when `interconnect` is
    /// [`InterconnectKind::Cxl`]).
    pub cxl_link: FlitLinkConfig,
    /// Accelerators behind the switch (1 = the paper's single-device
    /// topology; more exercises the switch's multi-port scalability).
    pub accel_count: u32,
    /// Host memory bus.
    pub membus: XbarConfig,
    /// SMMU; `None` disables translation (DMA uses physical addresses).
    pub smmu: Option<SmmuConfig>,
    /// Multi-channel DMA engine (request size = Fig. 4 packet size).
    pub dma: DmaEngineConfig,
    /// Accelerator wrapper (MatrixFlow array + controller).
    pub accel: AccelControllerConfig,
    /// Maintain hardware coherence between the accelerator path and the
    /// CPU caches at the LLC (DC mode only).
    pub coherent: bool,
    /// Compute functional GEMM results (tests; costs host CPU time).
    pub functional: bool,
    /// Worker threads for the parallel domain engine (1 = sequential).
    ///
    /// Observable results are byte-identical at any thread count; see
    /// [`accesys_sim::Kernel::set_partition`]. Defaults to the
    /// `ACCESYS_KERNEL_THREADS` environment variable, or 1.
    pub kernel_threads: u32,
}

/// Read the `ACCESYS_KERNEL_THREADS` environment default (1 if unset
/// or unparsable; 0 is clamped to 1).
pub fn kernel_threads_default() -> u32 {
    std::env::var("ACCESYS_KERNEL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(1, |n| n.max(1))
}

impl SystemConfig {
    /// The paper's Table II baseline system.
    pub fn paper_baseline() -> Self {
        SystemConfig {
            cpu: CpuConfig::default(),
            l1d: CacheConfig::l1(64 << 10),
            llc: CacheConfig::llc(2 << 20),
            iocache: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                hit_latency_ns: 2.0,
                lookup_latency_ns: 1.0,
                mshrs: 16,
            },
            host_mem: MemBackendConfig::Dram(MemTech::Ddr3),
            dev_mem: None,
            mem_location: MemoryLocation::Host,
            access_mode: AccessMode::DirectCache,
            interconnect: InterconnectKind::Pcie,
            pcie: PcieConfig::gen2_x4(),
            cxl_link: FlitLinkConfig::cxl2(8),
            accel_count: 1,
            membus: XbarConfig::default(),
            smmu: Some(SmmuConfig {
                va_base: crate::addrmap::ACCEL_VA_BASE,
                pa_base: crate::addrmap::DATA_PA_BASE,
                pt_base: crate::addrmap::PT_BASE,
                ..SmmuConfig::default()
            }),
            dma: DmaEngineConfig::default(),
            accel: AccelControllerConfig::default(),
            coherent: true,
            functional: false,
            kernel_threads: kernel_threads_default(),
        }
    }

    /// Host-memory system with a PCIe hierarchy of `gb_per_s` and memory
    /// technology `mem` (the Fig. 5/7 "PCIe-xGB" configurations).
    pub fn pcie_host(gb_per_s: f64, mem: MemTech) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.pcie = PcieConfig::with_bandwidth_gbps(gb_per_s);
        cfg.host_mem = MemBackendConfig::Dram(mem);
        cfg
    }

    /// Device-side-memory system (the paper's DevMem configuration):
    /// the accelerator works out of `mem` next to the array, and the CPU
    /// reaches it over PCIe (NUMA).
    pub fn devmem(mem: MemTech) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.dev_mem = Some(MemBackendConfig::Dram(mem));
        cfg.mem_location = MemoryLocation::Device;
        // The paper pairs DevMem with a 64-byte burst (packet) size.
        cfg.dma.request_bytes = 64;
        cfg
    }

    /// CXL-attached host-memory system: same accelerator and memory as
    /// [`SystemConfig::pcie_host`], but over a CXL.mem flit link with
    /// `lanes` Gen5 lanes (the framework's interconnect extension).
    pub fn cxl_host(lanes: u32, mem: MemTech) -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.interconnect = InterconnectKind::Cxl;
        cfg.cxl_link = FlitLinkConfig::cxl2(lanes);
        cfg.host_mem = MemBackendConfig::Dram(mem);
        cfg
    }

    /// A multi-accelerator cluster behind the PCIe switch.
    pub fn with_accel_count(mut self, count: u32) -> Self {
        self.accel_count = count;
        self
    }

    /// Set the DMA request (packet) size — the Fig. 4 knob.
    pub fn with_request_bytes(mut self, bytes: u32) -> Self {
        self.dma.request_bytes = bytes;
        self
    }

    /// Set the systolic-array compute override (Fig. 2 roofline knob).
    pub fn with_compute_override_ns(mut self, ns: f64) -> Self {
        self.accel.array.compute_override_ns = Some(ns);
        self
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), BuildError> {
        let err = |msg: &str| Err(BuildError::InvalidConfig(msg.to_string()));
        if self.dma.request_bytes > self.pcie.rc.max_payload_bytes {
            return err("dma.request_bytes exceeds pcie.rc.max_payload_bytes");
        }
        if self.dma.request_bytes == 0 || !self.dma.request_bytes.is_power_of_two() {
            return err("dma.request_bytes must be a non-zero power of two");
        }
        if self.dma.channels < 3 {
            return err("accelerator needs at least 3 DMA channels (A, B, C)");
        }
        if self.mem_location == MemoryLocation::Device && self.dev_mem.is_none() {
            return err("mem_location is Device but dev_mem is None");
        }
        crate::addrmap::check_accel_count(self.accel_count as usize)?;
        if self.interconnect == InterconnectKind::Cxl && self.accel_count != 1 {
            return err("the CXL topology is point-to-point: accel_count must be 1");
        }
        if self.accel.block_rows < self.accel.array.rows
            || self.accel.block_cols < self.accel.array.cols
        {
            return err("accel block size smaller than the systolic array");
        }
        if let Some(smmu) = &self.smmu {
            if smmu.va_base != crate::addrmap::ACCEL_VA_BASE
                || smmu.pa_base != crate::addrmap::DATA_PA_BASE
            {
                return err("smmu va/pa bases must match the address map");
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

// The parallel sweep engine hands configs to worker threads; a field
// that breaks Send + Sync (an Rc, a raw pointer) would silently
// serialize every experiment again, so assert the contract at compile
// time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SystemConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_ii() {
        let cfg = SystemConfig::paper_baseline();
        assert_eq!(cfg.l1d.size_bytes, 64 << 10);
        assert_eq!(cfg.llc.size_bytes, 2 << 20);
        assert_eq!(cfg.iocache.size_bytes, 32 << 10);
        assert!((cfg.cpu.freq_ghz - 1.0).abs() < 1e-12);
        assert!((cfg.pcie.rc.latency_ns - 150.0).abs() < 1e-12);
        assert!((cfg.pcie.switch.latency_ns - 50.0).abs() < 1e-12);
        assert!(matches!(
            cfg.host_mem,
            MemBackendConfig::Dram(MemTech::Ddr3)
        ));
        cfg.validate().unwrap();
    }

    #[test]
    fn devmem_preset_is_valid_and_uses_64b_bursts() {
        let cfg = SystemConfig::devmem(MemTech::Hbm2);
        assert_eq!(cfg.dma.request_bytes, 64);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_catches_oversized_requests() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.dma.request_bytes = 8192;
        assert!(matches!(cfg.validate(), Err(BuildError::InvalidConfig(_))));
    }

    #[test]
    fn validation_catches_missing_devmem() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.mem_location = MemoryLocation::Device;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bandwidth_helper_hits_paper_targets() {
        for target in [2.0, 8.0, 64.0] {
            let cfg = SystemConfig::pcie_host(target, MemTech::Ddr4);
            assert!((cfg.pcie.bandwidth_gbps() - target).abs() / target < 1e-9);
        }
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = SystemConfig::paper_baseline();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.l1d.size_bytes, cfg.l1d.size_bytes);
        assert!((back.pcie.bandwidth_gbps() - cfg.pcie.bandwidth_gbps()).abs() < 1e-12);
    }
}
