//! Framework error types.

use accesys_sim::SimError;

/// Error building a system from a [`crate::SystemConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration is inconsistent; the message names the field.
    InvalidConfig(String),
    /// The topology's longest request path would push more hops than the
    /// packet route stack can hold — caught by the topology validator at
    /// build time instead of a `route stack overflow` panic mid-run.
    RouteDepthExceeded {
        /// Route-stack depth the deepest request path would reach.
        depth: usize,
        /// The bound ([`accesys_sim::MAX_ROUTE_DEPTH`]).
        max: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BuildError::RouteDepthExceeded { depth, max } => write!(
                f,
                "topology route depth {depth} exceeds the route-stack bound {max}; \
                 flatten the switch tree or shorten the host-side path"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Error running a workload on a built system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event kernel aborted (livelock / event budget).
    Sim(SimError),
    /// The run drained its event queue without reaching completion —
    /// a dropped interrupt or a wiring hole.
    NoCompletion(String),
    /// The workload graph is structurally invalid for this system
    /// (cycle, dangling dependency, pin outside the device count) —
    /// caught before any event is simulated.
    InvalidGraph(String),
    /// A single streaming task is larger than the whole claimed
    /// activation window (`[base, base + size)`) and can never fit:
    /// caught at dispatch time instead of silently streaming out of the
    /// claimed address slice (which, on device-memory topologies, ends
    /// in a route-stack panic). Sequences of fitting tasks never hit
    /// this — their cursors wrap at the window end (buffer reuse).
    ActWindowOverflow {
        /// `"read"` or `"write"` — which half of the split overflowed.
        window: &'static str,
        /// First byte past the end the workload would have touched.
        needed_end: u64,
        /// First byte past the claimed window.
        limit: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation aborted: {e}"),
            RunError::NoCompletion(what) => {
                write!(f, "run finished without completing: {what}")
            }
            RunError::InvalidGraph(what) => write!(f, "invalid workload graph: {what}"),
            RunError::ActWindowOverflow {
                window,
                needed_end,
                limit,
            } => write!(
                f,
                "activation {window} window overflow: workload needs addresses up to \
                 {needed_end:#x} but the claimed window ends at {limit:#x}"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Unified framework error: anything that can go wrong building or
/// running a simulation.
///
/// Both [`BuildError`] and [`RunError`] convert into `Error`, so a caller
/// that chains `Simulation::new(..)?.run_gemm(..)?` can use a single
/// error type:
///
/// ```
/// use accesys::{Error, Simulation, SystemConfig};
/// use accesys_workload::GemmSpec;
///
/// fn run() -> Result<f64, Error> {
///     let report = Simulation::new(SystemConfig::paper_baseline())?
///         .run_gemm(GemmSpec::square(32))?;
///     Ok(report.total_time_ns())
/// }
/// # run().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Failed to assemble the system from its configuration.
    Build(BuildError),
    /// The assembled system failed while executing a workload.
    Run(RunError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Build(e) => e.fmt(f),
            Error::Run(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Build(e) => Some(e),
            Error::Run(e) => Some(e),
        }
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

impl From<RunError> for Error {
    fn from(e: RunError) -> Self {
        Error::Run(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_error_converts_from_both_stages() {
        let b: Error = BuildError::InvalidConfig("lanes".into()).into();
        assert!(b.to_string().contains("lanes"));
        let r: Error = RunError::NoCompletion("doorbell".into()).into();
        assert!(r.to_string().contains("doorbell"));
        assert_ne!(b, r);
        // source() exposes the inner error for downcasting.
        use std::error::Error as _;
        assert!(b.source().is_some());
    }

    #[test]
    fn errors_display_meaningfully() {
        let b = BuildError::InvalidConfig("dma.request_bytes > MPS".into());
        assert!(b.to_string().contains("request_bytes"));
        let r = RunError::NoCompletion("cpu program".into());
        assert!(r.to_string().contains("cpu program"));
        let s = RunError::from(SimError::EventLimitExceeded { limit: 5, at: 9 });
        assert!(s.to_string().contains("limit"));
    }
}
