//! # accesys
//!
//! A Rust reproduction of **Gem5-AcceSys** (DAC 2025): a framework for
//! system-level exploration of standard interconnects (PCIe) and
//! configurable memory hierarchies for hardware accelerators.
//!
//! The original is a gem5 extension; this crate rebuilds the whole
//! platform on a packet-level discrete-event kernel
//! ([`accesys_sim`]) and composes the subsystem crates into the paper's
//! Fig. 1 topology:
//!
//! * CPU cluster with L1/LLC caches and a driver model ([`accesys_cpu`]),
//! * MemBus crossbar and the PCIe hierarchy — root complex (150 ns),
//!   switch (50 ns), credited serializing links, endpoint with a bounded
//!   tag pool ([`accesys_interconnect`]),
//! * SMMU with µTLB + page-table walker ([`accesys_smmu`]),
//! * multi-channel DMA ([`accesys_dma`]),
//! * the MatrixFlow systolic-array accelerator wrapper ([`accesys_accel`]),
//! * DRAM backends per Table III ([`accesys_mem`]),
//! * GEMM and ViT workloads ([`accesys_workload`]).
//!
//! ## Quickstart
//!
//! ```
//! use accesys::{Simulation, SystemConfig};
//! use accesys_workload::GemmSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Simulation::new(SystemConfig::paper_baseline())?;
//! let report = sim.run_gemm(GemmSpec::square(64))?;
//! println!("GEMM took {:.1} µs", report.total_time_ns() / 1000.0);
//! # Ok(())
//! # }
//! ```
//!
//! The [`topology`] module is the declarative layer underneath all of
//! this: a graph IR plus a generic wiring engine, of which the Fig. 1
//! shape is one preset ([`SystemConfig::topology`]) and multi-level
//! switch trees another ([`topology::switch_tree`]). Its workload-side
//! mirror is the task-graph layer: workloads are
//! [`accesys_workload::graph::TaskGraph`]s (chains, fork-join shards,
//! pipelines, tenant mixes) executed by the dependency-driven
//! dispatcher ([`Simulation::run_graph`]). The [`analytic`] module
//! implements the paper's Section V-D workload-composition model
//! (Fig. 9 thresholds), and [`addrmap`] documents the simulated
//! physical address map.

pub mod addrmap;
pub mod analytic;
mod config;
mod dispatch;
mod error;
mod report;
mod system;
pub mod topology;

pub use config::{
    kernel_threads_default, AccessMode, InterconnectKind, MemBackendConfig, MemoryLocation,
    PcieConfig, SystemConfig,
};
pub use dispatch::{DispatchPlan, GraphRun, GraphSession};
pub use error::{BuildError, Error, RunError};
pub use report::{RunReport, VitReport};
pub use system::Simulation;
pub use topology::{KernelPartition, TopologySpec};

// Re-export the subsystem crates so downstream users need one dependency.
pub use accesys_accel as accel;
pub use accesys_cache as cache;
pub use accesys_cpu as cpu;
pub use accesys_dma as dma;
pub use accesys_interconnect as interconnect;
pub use accesys_mem as mem;
pub use accesys_sim as sim;
pub use accesys_smmu as smmu;
pub use accesys_workload as workload;
