//! Run reports: what a simulation produced.

use accesys_accel::JobRecord;
use accesys_sim::{units, Stats, Tick};
use accesys_smmu::SmmuStats;

/// Result of a GEMM run ([`crate::Simulation::run_gemm`]).
#[derive(Clone, Debug, serde::Serialize)]
pub struct RunReport {
    /// Tick the CPU program finished.
    pub total_ticks: Tick,
    /// Per-job accelerator records (doorbell → MSI).
    pub jobs: Vec<JobRecord>,
    /// SMMU statistics snapshot (zeroes when the SMMU is disabled).
    pub smmu: SmmuStats,
    /// All module counters.
    pub stats: Stats,
}

impl RunReport {
    /// End-to-end wall-clock time in nanoseconds (driver + transfer +
    /// compute + interrupt).
    pub fn total_time_ns(&self) -> f64 {
        units::to_ns(self.total_ticks)
    }

    /// Accelerator busy time: sum of job durations in nanoseconds.
    pub fn gemm_time_ns(&self) -> f64 {
        self.jobs.iter().map(|j| j.duration_ns()).sum()
    }

    /// Bytes the accelerator moved (loads + stores).
    pub fn bytes_moved(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| j.bytes_loaded + j.bytes_stored)
            .sum()
    }

    /// Achieved accelerator data bandwidth in GB/s.
    pub fn achieved_gbps(&self) -> f64 {
        let t = self.gemm_time_ns();
        if t == 0.0 {
            0.0
        } else {
            self.bytes_moved() as f64 / t
        }
    }

    /// Translation overhead: translation time as a fraction of total
    /// time (the paper's Table IV "Trans Overhead" row).
    pub fn translation_overhead(&self) -> f64 {
        let total = self.total_time_ns();
        if total == 0.0 {
            0.0
        } else {
            self.smmu.trans_time_sum_ns / total
        }
    }

    /// Host-DRAM energy in nanojoules (0 when the host memory backend is
    /// the fixed-latency model, which carries no energy model).
    pub fn host_mem_energy_nj(&self) -> f64 {
        self.stats.get_or_zero("host_mem.energy_total_nj")
    }

    /// Device-DRAM energy in nanojoules (0 without device memory).
    pub fn dev_mem_energy_nj(&self) -> f64 {
        self.stats.get_or_zero("dev_mem.energy_total_nj")
    }

    /// Total DRAM energy in nanojoules across both memories.
    pub fn dram_energy_nj(&self) -> f64 {
        self.host_mem_energy_nj() + self.dev_mem_energy_nj()
    }

    /// DRAM energy efficiency of the run in picojoules per byte moved by
    /// the accelerator (0 when no bytes moved or no energy model).
    pub fn dram_pj_per_byte(&self) -> f64 {
        let bytes = self.bytes_moved();
        if bytes == 0 {
            0.0
        } else {
            self.dram_energy_nj() * 1000.0 / bytes as f64
        }
    }
}

/// Result of a ViT layer run ([`crate::Simulation::run_vit_layer`]).
#[derive(Clone, Debug, serde::Serialize)]
pub struct VitReport {
    /// Tick the CPU program finished.
    pub total_ticks: Tick,
    /// `(phase label, duration ns)` in execution order; labels are
    /// `"gemm:<op>"` or `"nongemm:<op>"`.
    pub phases: Vec<(String, f64)>,
    /// Per-job accelerator records.
    pub jobs: Vec<JobRecord>,
    /// All module counters.
    pub stats: Stats,
}

impl VitReport {
    /// End-to-end time of the simulated layer in nanoseconds.
    pub fn total_time_ns(&self) -> f64 {
        units::to_ns(self.total_ticks)
    }

    /// Time spent in GEMM phases (driver + transfer + compute).
    pub fn gemm_ns(&self) -> f64 {
        self.phase_sum("gemm:")
    }

    /// Time spent in Non-GEMM (CPU streaming) phases.
    pub fn non_gemm_ns(&self) -> f64 {
        self.phase_sum("nongemm:")
    }

    /// Time spent in inter-stage transfer phases (pipelined graphs hand
    /// activations between devices as `xfer:` tasks).
    pub fn transfer_ns(&self) -> f64 {
        self.phase_sum("xfer:")
    }

    /// Residual time not covered by any phase class.
    pub fn other_ns(&self) -> f64 {
        (self.total_time_ns() - self.gemm_ns() - self.non_gemm_ns() - self.transfer_ns()).max(0.0)
    }

    /// Fraction of the layer spent in Non-GEMM work.
    pub fn non_gemm_fraction(&self) -> f64 {
        let t = self.total_time_ns();
        if t == 0.0 {
            0.0
        } else {
            self.non_gemm_ns() / t
        }
    }

    /// Extrapolate the single-layer measurement to a full model of
    /// `layers` identical layers (the paper's Section V-D composition).
    pub fn full_model_ns(&self, layers: u32) -> f64 {
        self.total_time_ns() * f64::from(layers)
    }

    fn phase_sum(&self, prefix: &str) -> f64 {
        self.phases
            .iter()
            .filter(|(label, _)| label.starts_with(prefix))
            .map(|(_, ns)| ns)
            .sum()
    }

    /// Aggregate phase durations by operator name.
    pub fn by_op(&self) -> Vec<(String, f64)> {
        let mut acc: Vec<(String, f64)> = Vec::new();
        for (label, ns) in &self.phases {
            match acc.iter_mut().find(|(l, _)| l == label) {
                Some((_, total)) => *total += ns,
                None => acc.push((label.clone(), *ns)),
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_phases(phases: Vec<(&str, f64)>) -> VitReport {
        let total: f64 = phases.iter().map(|(_, ns)| ns).sum();
        VitReport {
            total_ticks: units::ns(total),
            phases: phases
                .into_iter()
                .map(|(l, ns)| (l.to_string(), ns))
                .collect(),
            jobs: vec![],
            stats: Stats::new(),
        }
    }

    #[test]
    fn phase_classification() {
        let r = report_with_phases(vec![
            ("gemm:qkv", 100.0),
            ("nongemm:softmax", 40.0),
            ("gemm:fc1", 200.0),
        ]);
        assert_eq!(r.gemm_ns(), 300.0);
        assert_eq!(r.non_gemm_ns(), 40.0);
        assert!(r.other_ns() < 1e-9);
        assert!((r.non_gemm_fraction() - 40.0 / 340.0).abs() < 1e-12);
    }

    #[test]
    fn by_op_merges_repeats() {
        let r = report_with_phases(vec![
            ("gemm:scores", 10.0),
            ("gemm:scores", 15.0),
            ("nongemm:ln1", 5.0),
        ]);
        let by = r.by_op();
        assert_eq!(by[0], ("gemm:scores".to_string(), 25.0));
    }

    #[test]
    fn full_model_scales_linearly() {
        let r = report_with_phases(vec![("gemm:qkv", 50.0)]);
        assert_eq!(r.full_model_ns(12), 600.0);
    }
}
