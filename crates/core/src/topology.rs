//! The topology layer: a declarative graph IR for whole-system shapes
//! and the generic wiring engine that instantiates it.
//!
//! A [`TopologySpec`] is a typed, cyclic graph of node specs — memories,
//! xbars, caches, the CPU complex, SMMU, links, the PCIe root complex,
//! switches, endpoints, DMA engines and accelerator controllers — plus a
//! role registry naming the CPU and every accelerator *device* (the
//! `ctrl`/`dma`/`ep` triple workloads drive). The engine
//! ([`TopologySpec::instantiate`]) does generically what the Fig. 1
//! builder used to do by hand: reserve a kernel placeholder per node (so
//! cyclic references resolve), validate the graph, then construct and
//! install every module in deterministic node order.
//!
//! Validation happens *before* anything touches a kernel:
//!
//! * every reserved node is defined and every edge points at a defined
//!   node (no placeholder holes at run time),
//! * module names are unique (the kernel's stats contract),
//! * sibling switch-port claims, endpoint BARs and xbar routes are
//!   pairwise disjoint,
//! * switch fan-out stays within [`MAX_SWITCH_FANOUT`],
//! * the longest request path, counted in route-stack pushes, fits
//!   [`accesys_sim::MAX_ROUTE_DEPTH`] — rejecting too-deep trees with
//!   [`BuildError::RouteDepthExceeded`] at build time instead of a
//!   `route stack overflow` panic deep inside a run,
//! * every node is reachable from a traffic origin (CPU, a device, the
//!   SMMU walker).
//!
//! [`SystemConfig::topology`] lowers the classic configuration to this
//! IR — the paper's Fig. 1 shape is just one preset — and
//! [`switch_tree`] builds multi-level PCIe switch trees with
//! per-endpoint heterogeneous accelerators and memory placements.

use crate::addrmap;
use crate::{
    AccessMode, BuildError, InterconnectKind, MemBackendConfig, MemoryLocation, SystemConfig,
};
use accesys_accel::{AccelController, AccelControllerConfig};
use accesys_cache::{Cache, CacheConfig, CoherentConfig};
use accesys_cpu::{CpuComplex, CpuConfig};
use accesys_dma::{DmaEngine, DmaEngineConfig};
use accesys_interconnect::{
    aggregate_ranges, AddrRange, FlitLink, FlitLinkConfig, PcieEndpoint, PcieEndpointConfig,
    PcieLink, PcieLinkConfig, PcieSwitch, PcieSwitchConfig, RootComplex, RootComplexConfig,
    SwitchPort, Xbar, XbarConfig,
};
use accesys_mem::{Dram, SimpleMemory};
use accesys_sim::{streams, units, Kernel, Module, ModuleId, Tick, MAX_ROUTE_DEPTH};
use accesys_smmu::{Smmu, SmmuConfig};

/// Maximum downstream ports on one switch accepted by the validator.
pub const MAX_SWITCH_FANOUT: usize = 16;

/// Handle to one node of a [`TopologySpec`].
///
/// Obtained from [`TopologySpec::reserve`] / [`TopologySpec::add`];
/// node ids are indices into the owning spec, so do not mix ids across
/// specs (validation catches out-of-range ids, not cross-spec mixups).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One downstream port of a [`NodeSpec::Switch`].
#[derive(Clone, Debug)]
pub struct SwitchPortSpec {
    /// Egress link toward the subtree.
    pub egress_link: NodeId,
    /// The module directly below the port: an endpoint, or a child
    /// switch in a cascaded tree.
    pub downstream: NodeId,
    /// Address ranges the subtree behind this port claims.
    pub ranges: Vec<AddrRange>,
}

/// A typed node of the system graph. Edges are [`NodeId`]s into the same
/// [`TopologySpec`]; the wiring engine resolves them to kernel
/// [`ModuleId`]s at instantiation time.
#[derive(Clone, Debug)]
pub enum NodeSpec {
    /// A memory backend (host or device side).
    Memory {
        /// Backend model and timing.
        cfg: MemBackendConfig,
    },
    /// An address-routed crossbar (MemBus, DevMem controller frontend).
    Xbar {
        /// Width/frequency/latency.
        cfg: XbarConfig,
        /// Where unmatched requests go.
        default: NodeId,
        /// Address-range routes (must be pairwise disjoint).
        routes: Vec<(AddrRange, NodeId)>,
    },
    /// A cache level.
    Cache {
        /// Geometry and timing.
        cfg: CacheConfig,
        /// Next level toward memory.
        downstream: NodeId,
        /// `Some(cpu_cache)` makes this the coherence point probing the
        /// CPU-side cache on I/O traffic (the LLC in DC mode).
        coherent_cpu_cache: Option<NodeId>,
    },
    /// The CPU complex (driver model).
    Cpu {
        /// Core count/frequency/IPC.
        cfg: CpuConfig,
        /// First-level data cache.
        dcache: NodeId,
        /// Bus used for uncached (MMIO/NUMA) accesses.
        membus: NodeId,
        /// Address ranges accessed uncached.
        uncached: Vec<AddrRange>,
    },
    /// The SMMU, a bump-in-the-wire translator in front of `downstream`.
    Smmu {
        /// TLB/walker configuration.
        cfg: SmmuConfig,
        /// Where translated traffic (and page-table walks) go.
        downstream: NodeId,
    },
    /// One direction of a serializing PCIe link.
    PcieLink {
        /// Lanes, rate, credits.
        cfg: PcieLinkConfig,
        /// Receiving module.
        dst: NodeId,
    },
    /// One direction of a CXL-style flit link.
    FlitLink {
        /// Flit geometry and rate.
        cfg: FlitLinkConfig,
        /// Receiving module.
        dst: NodeId,
    },
    /// The PCIe root complex / CXL host bridge.
    RootComplex {
        /// Latency and credit accounting.
        cfg: RootComplexConfig,
        /// Host-side target of device-originated requests (SMMU or bus).
        host_target: NodeId,
        /// Downstream egress link.
        down_link: NodeId,
        /// Device ranges routed down the hierarchy.
        device_ranges: Vec<AddrRange>,
        /// Sideband range (MSI window) and its host-side target.
        sideband: Option<(AddrRange, NodeId)>,
        /// Modules on the PCIe side (switches, endpoints) for response
        /// routing.
        pcie_modules: Vec<NodeId>,
    },
    /// A store-and-forward PCIe switch.
    Switch {
        /// Per-TLP latency/occupancy.
        cfg: PcieSwitchConfig,
        /// Egress link toward the root.
        up_link: NodeId,
        /// Downstream ports (≤ [`MAX_SWITCH_FANOUT`], disjoint claims).
        ports: Vec<SwitchPortSpec>,
    },
    /// A device-side PCIe/CXL endpoint port.
    Endpoint {
        /// Tag pool and processing latency.
        cfg: PcieEndpointConfig,
        /// Egress link toward the root.
        up_link: NodeId,
        /// Where inward MMIO requests go (the accel controller).
        mmio_target: NodeId,
        /// The endpoint's BAR.
        bar: AddrRange,
        /// Extra inward routes (e.g. a device-memory window → its
        /// controller xbar).
        inward: Vec<(AddrRange, NodeId)>,
    },
    /// A multi-channel DMA engine.
    Dma {
        /// Channels and request size.
        cfg: DmaEngineConfig,
    },
    /// The accelerator wrapper (MatrixFlow array + controller).
    Accel {
        /// Array timing and blocking.
        cfg: AccelControllerConfig,
        /// The controller's DMA engine.
        dma: NodeId,
        /// The endpoint MSI writes leave through.
        ep: NodeId,
    },
}

/// Where one device's working set lives (resolved per endpoint, which is
/// what makes heterogeneous-memory topologies possible).
#[derive(Clone, Debug)]
pub enum DataPlacement {
    /// Host memory, reached through the device's endpoint.
    Host {
        /// Base address jobs are laid out at (virtual when `virt`).
        base: u64,
        /// Addresses are SMMU-translated virtual addresses.
        virt: bool,
    },
    /// Device-local memory next to the accelerator.
    Device {
        /// The local controller xbar DMA traffic targets.
        xbar: NodeId,
        /// Base address jobs are laid out at.
        base: u64,
    },
}

/// The role registry entry for one accelerator device: the triple the
/// workload drivers need to enqueue jobs, ring doorbells and collect
/// records.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// The [`NodeSpec::Accel`] controller.
    pub ctrl: NodeId,
    /// The [`NodeSpec::Dma`] engine.
    pub dma: NodeId,
    /// The [`NodeSpec::Endpoint`].
    pub ep: NodeId,
    /// Doorbell MMIO address the CPU writes to launch a job.
    pub doorbell: u64,
    /// Where this device's job data lives.
    pub data: DataPlacement,
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
    spec: NodeSpec,
}

/// A declarative, validated description of a whole simulated system.
///
/// Build one with [`SystemConfig::topology`] (the Fig. 1 preset),
/// [`switch_tree`] (multi-level trees), or node by node with
/// [`TopologySpec::reserve`]/[`TopologySpec::add`] for custom shapes;
/// then hand it to [`crate::Simulation::from_topology`].
#[derive(Clone, Debug, Default)]
pub struct TopologySpec {
    nodes: Vec<Option<Node>>,
    cpu: Option<NodeId>,
    smmu: Option<NodeId>,
    devices: Vec<DeviceSpec>,
    devmem_act_base: Option<u64>,
}

/// A parallel-kernel domain partition derived from a topology (see
/// [`TopologySpec::partition`]); feed it to
/// [`accesys_sim::Kernel::set_partition`].
#[derive(Clone, Debug)]
pub struct KernelPartition {
    /// Disjoint module sets covering every instantiated node.
    pub domains: Vec<Vec<ModuleId>>,
    /// Minimum cross-domain message latency, in ticks.
    pub lookahead: Tick,
}

/// Kernel-side handles of an instantiated topology.
#[derive(Clone, Debug)]
pub struct TopologyHandles {
    ids: Vec<ModuleId>,
    names: Vec<String>,
    /// The CPU complex driving workloads.
    pub cpu: ModuleId,
    /// The SMMU, when translation is part of the topology.
    pub smmu: Option<ModuleId>,
    /// Per-device handles, in device-registration order.
    pub devices: Vec<DeviceHandles>,
    /// Device-memory activation window for CPU-side Non-GEMM operators
    /// (see [`TopologySpec::set_devmem_act_base`]).
    pub devmem_act_base: Option<u64>,
}

/// Resolved per-device handles (see [`DeviceSpec`]).
#[derive(Clone, Debug)]
pub struct DeviceHandles {
    /// Accelerator controller module.
    pub ctrl: ModuleId,
    /// DMA engine module.
    pub dma: ModuleId,
    /// Endpoint module.
    pub ep: ModuleId,
    /// Doorbell MMIO address.
    pub doorbell: u64,
    /// Module DMA data traffic targets (endpoint or local xbar).
    pub data_target: ModuleId,
    /// Base address jobs are laid out at.
    pub data_base: u64,
    /// Whether job addresses are SMMU-translated.
    pub virt: bool,
    /// The controller's blocking configuration (job layout needs it).
    pub accel_cfg: AccelControllerConfig,
}

impl TopologyHandles {
    /// The kernel module a spec node became.
    pub fn module_id(&self, node: NodeId) -> ModuleId {
        self.ids[node.idx()]
    }

    /// Look a module up by its spec name.
    pub fn lookup(&self, name: &str) -> Option<ModuleId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.ids[i])
    }
}

impl TopologySpec {
    /// An empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (defined or reserved).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the spec has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registered devices, in order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Reserve a node slot so cyclic shapes can reference it before it
    /// is defined (mirrors the kernel's placeholder mechanism).
    pub fn reserve(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(None);
        id
    }

    /// Define a reserved node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already defined — redefinition is always a
    /// builder bug.
    pub fn define(&mut self, id: NodeId, name: impl Into<String>, spec: NodeSpec) {
        let slot = &mut self.nodes[id.idx()];
        assert!(slot.is_none(), "node {id:?} defined twice");
        *slot = Some(Node {
            name: name.into(),
            spec,
        });
    }

    /// Reserve and define in one step (for acyclic references).
    pub fn add(&mut self, name: impl Into<String>, spec: NodeSpec) -> NodeId {
        let id = self.reserve();
        self.define(id, name, spec);
        id
    }

    /// Register the CPU complex node driving workloads.
    pub fn set_cpu(&mut self, id: NodeId) {
        self.cpu = Some(id);
    }

    /// Register the SMMU node (statistics collection).
    pub fn set_smmu(&mut self, id: NodeId) {
        self.smmu = Some(id);
    }

    /// Register an accelerator device (order defines the device index
    /// sharded workloads use).
    pub fn add_device(&mut self, device: DeviceSpec) {
        self.devices.push(device);
    }

    /// Declare where CPU-side Non-GEMM activations live when the
    /// workload runs out of device memory. Must be an address some
    /// switch port / endpoint actually claims: CPU streams to an
    /// unclaimed device-window address bounce between the root complex
    /// and the switch until the route stack overflows. Presets set this
    /// (the classic lowering uses [`addrmap::DEVMEM_ACT_BASE`] inside
    /// the monolithic window; trees use a claimed per-endpoint slice).
    pub fn set_devmem_act_base(&mut self, base: u64) {
        self.devmem_act_base = Some(base);
    }

    fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.idx())?.as_ref()
    }

    fn err(msg: impl Into<String>) -> BuildError {
        BuildError::InvalidConfig(msg.into())
    }

    /// Every edge leaving `spec`, request edges and response-only edges
    /// alike (used for reachability).
    fn edges(spec: &NodeSpec) -> Vec<NodeId> {
        let mut out = Vec::new();
        match spec {
            NodeSpec::Memory { .. } | NodeSpec::Dma { .. } => {}
            NodeSpec::Xbar {
                default, routes, ..
            } => {
                out.push(*default);
                out.extend(routes.iter().map(|&(_, n)| n));
            }
            NodeSpec::Cache {
                downstream,
                coherent_cpu_cache,
                ..
            } => {
                out.push(*downstream);
                out.extend(coherent_cpu_cache.iter().copied());
            }
            NodeSpec::Cpu { dcache, membus, .. } => out.extend([*dcache, *membus]),
            NodeSpec::Smmu { downstream, .. } => out.push(*downstream),
            NodeSpec::PcieLink { dst, .. } | NodeSpec::FlitLink { dst, .. } => out.push(*dst),
            NodeSpec::RootComplex {
                host_target,
                down_link,
                sideband,
                pcie_modules,
                ..
            } => {
                out.extend([*host_target, *down_link]);
                out.extend(sideband.iter().map(|&(_, n)| n));
                out.extend(pcie_modules.iter().copied());
            }
            NodeSpec::Switch { up_link, ports, .. } => {
                out.push(*up_link);
                for p in ports {
                    out.extend([p.egress_link, p.downstream]);
                }
            }
            NodeSpec::Endpoint {
                up_link,
                mmio_target,
                inward,
                ..
            } => {
                out.extend([*up_link, *mmio_target]);
                out.extend(inward.iter().map(|&(_, n)| n));
            }
            NodeSpec::Accel { dma, ep, .. } => out.extend([*dma, *ep]),
        }
        out
    }

    /// Edges a request *in flight* follows when this node forwards it,
    /// for route-depth accounting. Terminal responders (memory, the CPU
    /// receiving an MSI, the controller receiving MMIO) forward nothing.
    /// Coherence probes and other fresh short-lived packets are excluded
    /// (their stacks start empty and stay shallower than the main path).
    fn forward_edges(&self, id: NodeId) -> Vec<NodeId> {
        let Some(node) = self.node(id) else {
            return Vec::new();
        };
        match &node.spec {
            NodeSpec::Memory { .. }
            | NodeSpec::Accel { .. }
            | NodeSpec::Cpu { .. }
            | NodeSpec::Dma { .. } => Vec::new(),
            NodeSpec::Cache { downstream, .. } => vec![*downstream],
            NodeSpec::Smmu { downstream, .. } => vec![*downstream],
            NodeSpec::PcieLink { dst, .. } | NodeSpec::FlitLink { dst, .. } => vec![*dst],
            NodeSpec::Xbar {
                default, routes, ..
            } => {
                let mut out = vec![*default];
                out.extend(routes.iter().map(|&(_, n)| n));
                out
            }
            NodeSpec::RootComplex {
                host_target,
                down_link,
                sideband,
                ..
            } => {
                let mut out = vec![*host_target, *down_link];
                out.extend(sideband.iter().map(|&(_, n)| n));
                out
            }
            NodeSpec::Switch { up_link, ports, .. } => {
                let mut out = vec![*up_link];
                out.extend(ports.iter().map(|p| p.egress_link));
                out
            }
            NodeSpec::Endpoint {
                up_link,
                mmio_target,
                inward,
                ..
            } => {
                let mut out = vec![*up_link, *mmio_target];
                out.extend(inward.iter().map(|&(_, n)| n));
                out
            }
        }
    }

    /// Whether a request *passing through* this node pushes a route-stack
    /// hop. Forwarders push; links do not; the CPU and DMA engines push
    /// only as request *origins*, which [`TopologySpec::max_request_depth`]
    /// accounts for separately (a request arriving at them terminates).
    fn pushes(spec: &NodeSpec) -> bool {
        matches!(
            spec,
            NodeSpec::Xbar { .. }
                | NodeSpec::Cache { .. }
                | NodeSpec::Smmu { .. }
                | NodeSpec::RootComplex { .. }
                | NodeSpec::Switch { .. }
                | NodeSpec::Endpoint { .. }
        )
    }

    /// Longest chain of route-stack pushes for a request entering at
    /// `id`, counting `id` itself. Back-edges to nodes already on the
    /// path are skipped: real routing never loops, so a cycle in the
    /// kind-level graph is always a spurious path.
    fn longest_from(&self, id: NodeId, on_path: &mut [bool]) -> usize {
        if id.idx() >= on_path.len() || on_path[id.idx()] {
            return 0;
        }
        let here = self
            .node(id)
            .map(|n| Self::pushes(&n.spec))
            .unwrap_or(false) as usize;
        on_path[id.idx()] = true;
        let mut best = 0;
        for s in self.forward_edges(id) {
            best = best.max(self.longest_from(s, on_path));
        }
        on_path[id.idx()] = false;
        here + best
    }

    /// The route-stack depth of the deepest request path in the graph,
    /// counted in pushes from every traffic origin: the CPU (loads and
    /// MMIO), each device's DMA engine (data traffic to its configured
    /// placement) and controller (MSI writes through the endpoint), and
    /// the SMMU's page-table walker. [`TopologySpec::validate`] rejects
    /// specs where this exceeds [`MAX_ROUTE_DEPTH`].
    pub fn max_request_depth(&self) -> usize {
        let mut on_path = vec![false; self.nodes.len()];
        let mut best = 0;
        // CPU-originated loads and uncached MMIO/NUMA accesses.
        if let Some(cpu) = self.cpu {
            if let Some(NodeSpec::Cpu { dcache, membus, .. }) = self.node(cpu).map(|n| &n.spec) {
                let (dcache, membus) = (*dcache, *membus);
                on_path[cpu.idx()] = true;
                let via = 1 + self
                    .longest_from(dcache, &mut on_path)
                    .max(self.longest_from(membus, &mut on_path));
                on_path[cpu.idx()] = false;
                best = best.max(via);
            }
        }
        // SMMU page-table walks (fresh packets starting at the SMMU).
        if let Some(smmu) = self.smmu {
            best = best.max(self.longest_from(smmu, &mut on_path));
        }
        // Device-originated traffic: DMA data requests to the device's
        // data target, and controller MSI writes entering the endpoint.
        for d in &self.devices {
            let target = match d.data {
                DataPlacement::Host { .. } => d.ep,
                DataPlacement::Device { xbar, .. } => xbar,
            };
            on_path[d.dma.idx()] = true;
            let dma_path = 1 + self.longest_from(target, &mut on_path);
            on_path[d.dma.idx()] = false;
            best = best.max(dma_path);
            best = best.max(self.longest_from(d.ep, &mut on_path));
        }
        best
    }

    /// Check the spec for structural errors (see the module docs for the
    /// full rule list).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] naming the offending node,
    /// or [`BuildError::RouteDepthExceeded`] for too-deep request paths.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.nodes.is_empty() {
            return Err(Self::err("topology has no nodes"));
        }
        // Holes and dangling edges.
        for (i, slot) in self.nodes.iter().enumerate() {
            let Some(node) = slot else {
                return Err(Self::err(format!(
                    "node {i} was reserved but never defined"
                )));
            };
            for edge in Self::edges(&node.spec) {
                if self.node(edge).is_none() {
                    return Err(Self::err(format!(
                        "node {:?} ({}) references undefined node {edge:?}",
                        NodeId(i as u32),
                        node.name
                    )));
                }
            }
        }
        // Unique names.
        let mut names: Vec<&str> = self
            .nodes
            .iter()
            .flatten()
            .map(|n| n.name.as_str())
            .collect();
        names.sort_unstable();
        if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(Self::err(format!("duplicate module name {:?}", dup[0])));
        }
        // Role registry.
        let cpu = self.cpu.ok_or_else(|| Self::err("no CPU registered"))?;
        if !matches!(self.node(cpu).map(|n| &n.spec), Some(NodeSpec::Cpu { .. })) {
            return Err(Self::err("registered CPU node is not a Cpu spec"));
        }
        if self.devices.is_empty() {
            return Err(Self::err("no accelerator devices registered"));
        }
        for (i, d) in self.devices.iter().enumerate() {
            let kinds = [(d.ctrl, "Accel"), (d.dma, "Dma"), (d.ep, "Endpoint")];
            for (id, want) in kinds {
                let spec = self.node(id).map(|n| &n.spec);
                let ok = matches!(
                    (want, spec),
                    ("Accel", Some(NodeSpec::Accel { .. }))
                        | ("Dma", Some(NodeSpec::Dma { .. }))
                        | ("Endpoint", Some(NodeSpec::Endpoint { .. }))
                );
                if !ok {
                    return Err(Self::err(format!(
                        "device {i}: role {want} points at a different node kind"
                    )));
                }
            }
            if let DataPlacement::Device { xbar, .. } = d.data {
                if !matches!(
                    self.node(xbar).map(|n| &n.spec),
                    Some(NodeSpec::Xbar { .. })
                ) {
                    return Err(Self::err(format!(
                        "device {i}: data placement xbar is not an Xbar node"
                    )));
                }
            }
        }
        // Per-node structural rules.
        let mut bars: Vec<(AddrRange, &str)> = Vec::new();
        for node in self.nodes.iter().flatten() {
            match &node.spec {
                NodeSpec::Switch { ports, .. } => {
                    if ports.len() > MAX_SWITCH_FANOUT {
                        return Err(Self::err(format!(
                            "switch {} has {} ports (fan-out limit {MAX_SWITCH_FANOUT})",
                            node.name,
                            ports.len()
                        )));
                    }
                    for (a, pa) in ports.iter().enumerate() {
                        for pb in ports.iter().skip(a + 1) {
                            for ra in &pa.ranges {
                                for rb in &pb.ranges {
                                    if ra.overlaps(rb) {
                                        return Err(Self::err(format!(
                                            "switch {}: sibling port claims {ra} and {rb} overlap",
                                            node.name
                                        )));
                                    }
                                }
                            }
                        }
                    }
                }
                NodeSpec::Endpoint { bar, .. } => {
                    for (other, name) in &bars {
                        if bar.overlaps(other) {
                            return Err(Self::err(format!(
                                "endpoint {} BAR {bar} overlaps {name}'s {other}",
                                node.name
                            )));
                        }
                    }
                    bars.push((*bar, &node.name));
                }
                NodeSpec::Xbar { routes, .. } => {
                    for (a, (ra, _)) in routes.iter().enumerate() {
                        for (rb, _) in routes.iter().skip(a + 1) {
                            if ra.overlaps(rb) {
                                return Err(Self::err(format!(
                                    "xbar {}: routes {ra} and {rb} overlap",
                                    node.name
                                )));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Route depth.
        let depth = self.max_request_depth();
        if depth > MAX_ROUTE_DEPTH {
            return Err(BuildError::RouteDepthExceeded {
                depth,
                max: MAX_ROUTE_DEPTH,
            });
        }
        // Reachability from traffic origins.
        let mut reached = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        stack.extend(self.cpu);
        stack.extend(self.smmu);
        stack.extend(self.devices.iter().flat_map(|d| [d.ctrl, d.dma]));
        for d in &self.devices {
            if let DataPlacement::Device { xbar, .. } = d.data {
                stack.push(xbar);
            }
        }
        while let Some(id) = stack.pop() {
            if reached[id.idx()] {
                continue;
            }
            reached[id.idx()] = true;
            if let Some(node) = self.node(id) {
                stack.extend(Self::edges(&node.spec));
            }
        }
        if let Some(i) = reached.iter().position(|&r| !r) {
            let name = &self.nodes[i].as_ref().expect("validated above").name;
            return Err(Self::err(format!(
                "node {name} is unreachable from any traffic origin"
            )));
        }
        Ok(())
    }

    /// Derive a parallel-kernel domain partition from the topology.
    ///
    /// Domains are the connected components left after cutting the graph
    /// at latency-bearing PCIe edges. Each link *pair* is kept with the
    /// subtree **below** it (an up-direction link joins its source's
    /// domain, not its destination's), which makes every cut send carry
    /// hardware latency in both directions:
    ///
    /// * downward: a root complex or switch forwards onto a cut link no
    ///   earlier than its own `latency_ns`;
    /// * upward: a link delivers (and returns credits) no earlier than
    ///   the header serialization time.
    ///
    /// The minimum of those bounds over the whole topology is the
    /// partition's `lookahead`. Endpoint-side zero-delay messages
    /// (credit drains, accelerator doorbells, DMA issue) all stay inside
    /// one domain by construction. Flit (CXL) links are *not* cut — their
    /// coherent byte-level handshakes are too tightly coupled — so a
    /// CXL-attached device shares the host's domain.
    ///
    /// Returns `None` when the topology yields fewer than two domains or
    /// no usable lookahead (nothing to parallelize).
    pub fn partition(&self, handles: &TopologyHandles) -> Option<KernelPartition> {
        let n = self.nodes.len();

        // Up-direction links: cut from their destination (the parent
        // side); they join the child's domain through the child's own
        // `up_link` edge below.
        let mut is_up_link = vec![false; n];
        for node in self.nodes.iter().flatten() {
            match &node.spec {
                NodeSpec::Switch { up_link, .. } | NodeSpec::Endpoint { up_link, .. } => {
                    is_up_link[up_link.idx()] = true;
                }
                _ => {}
            }
        }

        // Union-find over node slots; every non-cut communication edge
        // merges its endpoints. Routing metadata (`pcie_modules`, switch
        // `downstream` back-references, CPU uncached ranges) carries no
        // messages and is skipped.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: NodeId| {
            let (ra, rb) = (find(parent, a), find(parent, b.idx()));
            parent[ra] = rb;
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            match &node.spec {
                NodeSpec::Memory { .. } | NodeSpec::Dma { .. } => {}
                NodeSpec::Xbar {
                    default, routes, ..
                } => {
                    union(&mut parent, i, *default);
                    for &(_, dst) in routes {
                        union(&mut parent, i, dst);
                    }
                }
                NodeSpec::Cache {
                    downstream,
                    coherent_cpu_cache,
                    ..
                } => {
                    union(&mut parent, i, *downstream);
                    if let Some(cc) = coherent_cpu_cache {
                        union(&mut parent, i, *cc);
                    }
                }
                NodeSpec::Cpu { dcache, membus, .. } => {
                    union(&mut parent, i, *dcache);
                    union(&mut parent, i, *membus);
                }
                NodeSpec::Smmu { downstream, .. } => union(&mut parent, i, *downstream),
                // A down-direction PCIe link joins the subtree it feeds;
                // an up-direction link is cut here and joins its source's
                // domain via the Switch/Endpoint arm below.
                NodeSpec::PcieLink { dst, .. } => {
                    if !is_up_link[i] {
                        union(&mut parent, i, *dst);
                    }
                }
                // Flit links are never cut (see the doc comment).
                NodeSpec::FlitLink { dst, .. } => union(&mut parent, i, *dst),
                NodeSpec::RootComplex {
                    host_target,
                    sideband,
                    ..
                } => {
                    // `down_link` is a cut edge (≥ latency_ns away).
                    union(&mut parent, i, *host_target);
                    if let Some((_, dst)) = sideband {
                        union(&mut parent, i, *dst);
                    }
                }
                NodeSpec::Switch { up_link, .. } => {
                    // Port egress links are cut edges (≥ latency_ns away);
                    // the up link rides with this switch's domain.
                    union(&mut parent, i, *up_link);
                }
                NodeSpec::Endpoint {
                    up_link,
                    mmio_target,
                    inward,
                    ..
                } => {
                    union(&mut parent, i, *up_link);
                    union(&mut parent, i, *mmio_target);
                    for &(_, dst) in inward {
                        union(&mut parent, i, dst);
                    }
                }
                NodeSpec::Accel { dma, ep, .. } => {
                    union(&mut parent, i, *dma);
                    union(&mut parent, i, *ep);
                }
            }
        }

        // Lookahead: the smallest latency any cut edge can carry. PCIe
        // links bound the upward direction by the header serialization
        // time; root complexes and switches bound the downward direction
        // by their per-TLP latency.
        let mut lookahead = Tick::MAX;
        for node in self.nodes.iter().flatten() {
            let bound = match &node.spec {
                NodeSpec::PcieLink { cfg, .. } => {
                    units::transfer_time(u64::from(cfg.header_bytes), cfg.bandwidth_gbps())
                }
                NodeSpec::RootComplex { cfg, .. } => units::ns(cfg.latency_ns),
                NodeSpec::Switch { cfg, .. } => units::ns(cfg.latency_ns),
                _ => continue,
            };
            lookahead = lookahead.min(bound);
        }

        // Group nodes into domains, ordered by first member for
        // determinism.
        let mut comp_index: Vec<Option<usize>> = vec![None; n];
        let mut domains: Vec<Vec<ModuleId>> = Vec::new();
        for i in 0..n {
            if self.nodes[i].is_none() {
                continue;
            }
            let root = find(&mut parent, i);
            let d = *comp_index[root].get_or_insert_with(|| {
                domains.push(Vec::new());
                domains.len() - 1
            });
            domains[d].push(handles.module_id(NodeId(i as u32)));
        }
        if domains.len() < 2 || lookahead == 0 || lookahead == Tick::MAX {
            return None;
        }
        Some(KernelPartition { domains, lookahead })
    }

    /// Instantiate the spec into `kernel`: validate, reserve one
    /// placeholder per node (cyclic edges resolve through them), then
    /// construct and install every module in node order.
    ///
    /// # Errors
    ///
    /// Returns any [`TopologySpec::validate`] error; a validated spec
    /// always instantiates.
    pub fn instantiate(&self, kernel: &mut Kernel) -> Result<TopologyHandles, BuildError> {
        self.validate()?;
        let ids: Vec<ModuleId> = self
            .nodes
            .iter()
            .map(|_| kernel.add_placeholder())
            .collect();
        let at = |n: NodeId| ids[n.idx()];
        for (i, node) in self.nodes.iter().enumerate() {
            let node = node.as_ref().expect("validated: no holes");
            let name = node.name.as_str();
            let module: Box<dyn Module> = match &node.spec {
                NodeSpec::Memory { cfg } => make_mem(name, cfg),
                NodeSpec::Xbar {
                    cfg,
                    default,
                    routes,
                } => {
                    let mut bus = Xbar::new(name, *cfg, at(*default));
                    for &(range, dst) in routes {
                        bus.add_route(range, at(dst));
                    }
                    Box::new(bus)
                }
                NodeSpec::Cache {
                    cfg,
                    downstream,
                    coherent_cpu_cache,
                } => {
                    let mut cache = Cache::new(name, *cfg, at(*downstream));
                    if let Some(cpu_cache) = coherent_cpu_cache {
                        cache = cache.with_coherence(CoherentConfig {
                            cpu_cache: at(*cpu_cache),
                            io_stream_base: streams::IO_BASE,
                        });
                    }
                    Box::new(cache)
                }
                NodeSpec::Cpu {
                    cfg,
                    dcache,
                    membus,
                    uncached,
                } => {
                    let mut cpu = CpuComplex::new(name, *cfg, at(*dcache), at(*membus));
                    for r in uncached {
                        cpu.add_uncached_range(r.base, r.size);
                    }
                    Box::new(cpu)
                }
                NodeSpec::Smmu { cfg, downstream } => {
                    Box::new(Smmu::new(name, *cfg, at(*downstream)))
                }
                NodeSpec::PcieLink { cfg, dst } => Box::new(PcieLink::new(name, *cfg, at(*dst))),
                NodeSpec::FlitLink { cfg, dst } => Box::new(FlitLink::new(name, *cfg, at(*dst))),
                NodeSpec::RootComplex {
                    cfg,
                    host_target,
                    down_link,
                    device_ranges,
                    sideband,
                    pcie_modules,
                } => {
                    let mut rc = RootComplex::new(name, *cfg, at(*host_target), at(*down_link));
                    for &r in device_ranges {
                        rc.add_device_range(r);
                    }
                    if let Some((range, target)) = sideband {
                        rc.add_sideband(*range, at(*target));
                    }
                    for &m in pcie_modules {
                        rc.add_pcie_module(at(m));
                    }
                    Box::new(rc)
                }
                NodeSpec::Switch {
                    cfg,
                    up_link,
                    ports,
                } => {
                    let mut sw = PcieSwitch::new(name, *cfg, at(*up_link));
                    for p in ports {
                        sw.add_port(SwitchPort {
                            egress_link: at(p.egress_link),
                            endpoint: at(p.downstream),
                            ranges: p.ranges.clone(),
                        });
                    }
                    Box::new(sw)
                }
                NodeSpec::Endpoint {
                    cfg,
                    up_link,
                    mmio_target,
                    bar,
                    inward,
                } => {
                    let mut ep =
                        PcieEndpoint::new(name, *cfg, at(*up_link), at(*mmio_target), *bar);
                    for &(range, target) in inward {
                        ep.add_inward_route(range, at(target));
                    }
                    Box::new(ep)
                }
                NodeSpec::Dma { cfg } => Box::new(DmaEngine::new(name, *cfg)),
                NodeSpec::Accel { cfg, dma, ep } => {
                    Box::new(AccelController::new(name, *cfg, at(*dma), at(*ep)))
                }
            };
            kernel.set_module(ids[i], module);
        }
        let devices = self
            .devices
            .iter()
            .map(|d| {
                let accel_cfg = match &self.node(d.ctrl).expect("validated").spec {
                    NodeSpec::Accel { cfg, .. } => *cfg,
                    _ => unreachable!("validated: ctrl is an Accel node"),
                };
                let (data_target, data_base, virt) = match d.data {
                    DataPlacement::Host { base, virt } => (at(d.ep), base, virt),
                    DataPlacement::Device { xbar, base } => (at(xbar), base, false),
                };
                DeviceHandles {
                    ctrl: at(d.ctrl),
                    dma: at(d.dma),
                    ep: at(d.ep),
                    doorbell: d.doorbell,
                    data_target,
                    data_base,
                    virt,
                    accel_cfg,
                }
            })
            .collect();
        Ok(TopologyHandles {
            names: self
                .nodes
                .iter()
                .map(|n| n.as_ref().expect("validated").name.clone())
                .collect(),
            cpu: at(self.cpu.expect("validated: cpu registered")),
            smmu: self.smmu.map(at),
            devices,
            devmem_act_base: self.devmem_act_base,
            ids,
        })
    }
}

fn make_mem(name: &str, cfg: &MemBackendConfig) -> Box<dyn Module> {
    match cfg {
        MemBackendConfig::Simple(c) => Box::new(SimpleMemory::new(name, *c)),
        MemBackendConfig::Dram(t) => Box::new(Dram::new(name, t.dram_config())),
    }
}

/// Per-device data-window stride inside the host data window (64 MiB
/// slices so concurrent shards never alias rows).
const HOST_DATA_STRIDE: u64 = 0x0400_0000;

/// The DevMem controller frontend used in front of device memories.
const DEVMEM_XBAR: XbarConfig = XbarConfig {
    width_bytes: 64,
    freq_ghz: 2.0,
    latency_ns: 15.0,
};

impl SystemConfig {
    /// Lower this configuration to the topology IR: the paper's Fig. 1
    /// shape (single root complex, one switch level, one DMA + accel per
    /// endpoint) as one preset of the general engine.
    ///
    /// Node order, names and wiring reproduce the original hand-wired
    /// builder exactly, so a lowered [`SystemConfig::paper_baseline`]
    /// simulates byte-identically.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidConfig`] when
    /// [`SystemConfig::validate`] rejects the configuration.
    pub fn topology(&self) -> Result<TopologySpec, BuildError> {
        self.validate()?;
        let cfg = self;
        let dc = cfg.access_mode == AccessMode::DirectCache;
        let has_dev = cfg.dev_mem.is_some();
        let n = cfg.accel_count as usize;
        let cxl = cfg.interconnect == InterconnectKind::Cxl;
        let mut t = TopologySpec::new();

        // Reserve every slot in the canonical order (the graph is cyclic).
        let host_mem = t.reserve();
        let membus = t.reserve();
        let llc = t.reserve();
        let l1d = t.reserve();
        let iocache = dc.then(|| t.reserve());
        let cpu = t.reserve();
        let smmu = cfg.smmu.is_some().then(|| t.reserve());
        let rc = t.reserve();
        let switch = (!cxl).then(|| t.reserve());
        let link_rc_down = t.reserve();
        let link_sw_up = (!cxl).then(|| t.reserve());
        let link_sw_down: Vec<NodeId> = if cxl {
            Vec::new()
        } else {
            (0..n).map(|_| t.reserve()).collect()
        };
        let link_ep_up: Vec<NodeId> = (0..n).map(|_| t.reserve()).collect();
        let eps: Vec<NodeId> = (0..n).map(|_| t.reserve()).collect();
        let dmas: Vec<NodeId> = (0..n).map(|_| t.reserve()).collect();
        let ctrls: Vec<NodeId> = (0..n).map(|_| t.reserve()).collect();
        let devmem_xbar = has_dev.then(|| t.reserve());
        let dev_mem = has_dev.then(|| t.reserve());

        // Memory backends.
        t.define(host_mem, "host_mem", NodeSpec::Memory { cfg: cfg.host_mem });
        if let (Some(id), Some(mem_cfg)) = (dev_mem, cfg.dev_mem.as_ref()) {
            t.define(id, "dev_mem", NodeSpec::Memory { cfg: *mem_cfg });
        }

        // MemBus: MSI → CPU, device windows → RC, rest → memory ctrl.
        let mut routes = vec![(addrmap::MSI, cpu), (addrmap::DEVICE_BAR, rc)];
        if has_dev {
            routes.push((addrmap::DEVMEM, rc));
        }
        t.define(
            membus,
            "membus",
            NodeSpec::Xbar {
                cfg: cfg.membus,
                default: host_mem,
                routes,
            },
        );

        // Cache hierarchy + SMMU (shared with the tree preset).
        let rc_host_target = define_host_caches(&mut t, cfg, membus, llc, l1d, iocache, smmu);

        // Links.
        if cxl {
            t.define(
                link_rc_down,
                "cxl.down",
                NodeSpec::FlitLink {
                    cfg: cfg.cxl_link,
                    dst: eps[0],
                },
            );
            t.define(
                link_ep_up[0],
                "cxl.up",
                NodeSpec::FlitLink {
                    cfg: cfg.cxl_link,
                    dst: rc,
                },
            );
        } else {
            let sw = switch.expect("PCIe topology has a switch");
            t.define(
                link_rc_down,
                "link.rc_down",
                NodeSpec::PcieLink {
                    cfg: cfg.pcie.link,
                    dst: sw,
                },
            );
            t.define(
                link_sw_up.expect("PCIe topology"),
                "link.sw_up",
                NodeSpec::PcieLink {
                    cfg: cfg.pcie.link,
                    dst: rc,
                },
            );
            for i in 0..n {
                t.define(
                    link_sw_down[i],
                    format!("link.sw_down{i}"),
                    NodeSpec::PcieLink {
                        cfg: cfg.pcie.link,
                        dst: eps[i],
                    },
                );
                t.define(
                    link_ep_up[i],
                    format!("link.ep_up{i}"),
                    NodeSpec::PcieLink {
                        cfg: cfg.pcie.link,
                        dst: sw,
                    },
                );
            }
        }

        // Root complex (PCIe) / host bridge (CXL).
        let rc_cfg = if cxl {
            RootComplexConfig {
                max_payload_bytes: cfg.pcie.rc.max_payload_bytes,
                ..RootComplexConfig::cxl_host_bridge()
            }
        } else {
            cfg.pcie.rc
        };
        let mut device_ranges = vec![addrmap::DEVICE_BAR];
        if has_dev {
            device_ranges.push(addrmap::DEVMEM);
        }
        let mut pcie_modules: Vec<NodeId> = Vec::new();
        pcie_modules.extend(switch);
        pcie_modules.extend(eps.iter().copied());
        t.define(
            rc,
            if cxl { "cxl.bridge" } else { "pcie.rc" },
            NodeSpec::RootComplex {
                cfg: rc_cfg,
                host_target: rc_host_target,
                down_link: link_rc_down,
                device_ranges,
                sideband: Some((addrmap::MSI, membus)),
                pcie_modules,
            },
        );

        // Switch with one port per cluster member (PCIe only).
        if let Some(sw) = switch {
            let ports = (0..n)
                .map(|i| {
                    let mut ranges = vec![addrmap::device_bar(i)];
                    if has_dev && i == 0 {
                        ranges.push(addrmap::DEVMEM);
                    }
                    SwitchPortSpec {
                        egress_link: link_sw_down[i],
                        downstream: eps[i],
                        ranges,
                    }
                })
                .collect();
            t.define(
                sw,
                "pcie.switch",
                NodeSpec::Switch {
                    cfg: cfg.pcie.switch,
                    up_link: link_sw_up.expect("PCIe"),
                    ports,
                },
            );
        }

        // Endpoints: MMIO to the controller, NUMA window to DevMem.
        for i in 0..n {
            let ep_cfg = if cxl {
                PcieEndpointConfig {
                    tags: cfg.pcie.ep.tags,
                    proc_ns: cfg.pcie.ep.proc_ns,
                    ..PcieEndpointConfig::cxl()
                }
            } else {
                cfg.pcie.ep
            };
            let ep_name = if cxl {
                "cxl.ep".to_string()
            } else {
                format!("pcie.ep{i}")
            };
            let mut inward = Vec::new();
            if i == 0 {
                if let Some(xbar) = devmem_xbar {
                    inward.push((addrmap::DEVMEM, xbar));
                }
            }
            t.define(
                eps[i],
                ep_name,
                NodeSpec::Endpoint {
                    cfg: ep_cfg,
                    up_link: link_ep_up[i],
                    mmio_target: ctrls[i],
                    bar: addrmap::device_bar(i),
                    inward,
                },
            );
        }

        // DevMem controller frontend.
        if let (Some(xbar), Some(mem)) = (devmem_xbar, dev_mem) {
            t.define(
                xbar,
                "devmem_ctrl",
                NodeSpec::Xbar {
                    cfg: DEVMEM_XBAR,
                    default: mem,
                    routes: Vec::new(),
                },
            );
        }

        // DMA engines + accelerator controllers.
        for i in 0..n {
            t.define(dmas[i], format!("dma{i}"), NodeSpec::Dma { cfg: cfg.dma });
            t.define(
                ctrls[i],
                format!("accel{i}"),
                NodeSpec::Accel {
                    cfg: cfg.accel,
                    dma: dmas[i],
                    ep: eps[i],
                },
            );
        }

        // CPU cluster.
        let mut uncached = vec![addrmap::DEVICE_BAR];
        if has_dev {
            uncached.push(addrmap::DEVMEM);
        }
        t.define(
            cpu,
            "cpu",
            NodeSpec::Cpu {
                cfg: cfg.cpu,
                dcache: l1d,
                membus,
                uncached,
            },
        );

        // Roles.
        t.set_cpu(cpu);
        if let Some(id) = smmu {
            t.set_smmu(id);
        }
        if has_dev {
            // The monolithic DEVMEM window is claimed whole by endpoint
            // 0's port, so the classic activation base is routable.
            t.set_devmem_act_base(addrmap::DEVMEM_ACT_BASE);
        }
        for i in 0..n {
            let dev_off = i as u64 * HOST_DATA_STRIDE;
            let data = match cfg.mem_location {
                MemoryLocation::Host => DataPlacement::Host {
                    base: if cfg.smmu.is_some() {
                        addrmap::ACCEL_VA_BASE + dev_off
                    } else {
                        addrmap::DATA_PA_BASE + dev_off
                    },
                    virt: cfg.smmu.is_some(),
                },
                MemoryLocation::Device => DataPlacement::Device {
                    xbar: devmem_xbar.expect("validated: devmem present"),
                    base: addrmap::DEVMEM.base + dev_off,
                },
            };
            t.add_device(DeviceSpec {
                ctrl: ctrls[i],
                dma: dmas[i],
                ep: eps[i],
                doorbell: addrmap::doorbell(i),
                data,
            });
        }
        Ok(t)
    }
}

/// Per-endpoint overrides for [`switch_tree_with`]: heterogeneous
/// accelerator configurations and memory placements.
#[derive(Clone, Debug, Default)]
pub struct EndpointOptions {
    /// Override the accelerator controller configuration.
    pub accel: Option<AccelControllerConfig>,
    /// Give this endpoint local device memory (its jobs are placed in
    /// its [`addrmap::devmem_slice`]).
    pub dev_mem: Option<MemBackendConfig>,
}

/// A multi-level PCIe switch tree: `levels[l]` is the fan-out of every
/// switch at level `l`, so the tree has `levels.len()` switch levels and
/// `levels.iter().product()` endpoints, each with its own DMA engine and
/// accelerator. Switch ports claim the aggregated BAR ranges of their
/// whole subtree (see [`aggregate_ranges`]).
///
/// The host side (memory, caches, CPU, SMMU, root complex) comes from
/// `cfg`, as do link/switch/endpoint/DMA/accel configurations. When
/// `cfg.mem_location` is [`MemoryLocation::Device`], every endpoint gets
/// local memory from `cfg.dev_mem`.
///
/// ```
/// use accesys::{topology, Simulation, SystemConfig};
/// use accesys_workload::GemmSpec;
///
/// # fn main() -> Result<(), accesys::Error> {
/// // Depth-2 tree: 2 switches under the root, 4 endpoints each.
/// let cfg = SystemConfig::paper_baseline();
/// let spec = topology::switch_tree(&cfg, &[2, 4])?;
/// let mut sim = Simulation::from_topology(cfg, &spec)?;
/// assert_eq!(sim.accel_count(), 8);
/// let report = sim.run_gemm_sharded(GemmSpec::square(64))?;
/// assert_eq!(report.jobs.len(), 8);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`BuildError::InvalidConfig`] for CXL configurations (the
/// flit link is point-to-point), empty/zero levels, or an endpoint count
/// outside the BAR carving ([`addrmap::check_accel_count`]); and
/// [`BuildError::RouteDepthExceeded`] when the tree is too deep for the
/// route stack.
pub fn switch_tree(cfg: &SystemConfig, levels: &[u32]) -> Result<TopologySpec, BuildError> {
    switch_tree_with(cfg, levels, |_| EndpointOptions::default())
}

/// [`switch_tree`] with per-endpoint overrides: `opts(i)` configures
/// leaf `i` (left to right), enabling heterogeneous accelerator mixes
/// and per-endpoint memory placement in one tree.
///
/// # Errors
///
/// As [`switch_tree`].
pub fn switch_tree_with(
    cfg: &SystemConfig,
    levels: &[u32],
    opts: impl Fn(usize) -> EndpointOptions,
) -> Result<TopologySpec, BuildError> {
    cfg.validate()?;
    if cfg.interconnect == InterconnectKind::Cxl {
        return Err(TopologySpec::err(
            "switch trees are PCIe topologies; the CXL flit link is point-to-point",
        ));
    }
    if levels.is_empty() || levels.contains(&0) {
        return Err(TopologySpec::err(
            "switch tree needs at least one level of non-zero fan-out",
        ));
    }
    // Checked product: a wrapped multiply could sneak a huge tree past
    // the carving bound (and debug builds would panic instead of
    // returning a typed error).
    let endpoints = levels
        .iter()
        .try_fold(1u64, |acc, &f| acc.checked_mul(u64::from(f)))
        .unwrap_or(u64::MAX);
    let endpoints = usize::try_from(endpoints).unwrap_or(usize::MAX);
    addrmap::check_accel_count(endpoints)?;

    let mut t = TopologySpec::new();
    let host = host_side_nodes(&mut t, cfg);

    // Build the switch tree under the root complex.
    let mut builder = TreeBuilder {
        t: &mut t,
        cfg,
        opts: &opts,
        next_ep: 0,
        pcie_modules: Vec::new(),
        any_devmem: false,
        act_base: None,
    };
    let root = builder.switch(levels, "0", host.rc)?;
    let any_devmem = builder.any_devmem;
    let pcie_modules = builder.pcie_modules;
    if let Some(base) = builder.act_base {
        // CPU-side activations must live in a *claimed* slice: the
        // monolithic DEVMEM_ACT_BASE falls outside every per-endpoint
        // slice for trees with few leaves, and an unclaimed device
        // address bounces between RC and switch until the route stack
        // overflows.
        t.set_devmem_act_base(base);
    }

    t.define(
        host.link_rc_down,
        "link.rc_down",
        NodeSpec::PcieLink {
            cfg: cfg.pcie.link,
            dst: root,
        },
    );
    let mut device_ranges = vec![addrmap::DEVICE_BAR];
    if any_devmem {
        device_ranges.push(addrmap::DEVMEM);
    }
    t.define(
        host.rc,
        "pcie.rc",
        NodeSpec::RootComplex {
            cfg: cfg.pcie.rc,
            host_target: host.rc_host_target,
            down_link: host.link_rc_down,
            device_ranges,
            sideband: Some((addrmap::MSI, host.membus)),
            pcie_modules,
        },
    );
    let mut routes = vec![(addrmap::MSI, host.cpu), (addrmap::DEVICE_BAR, host.rc)];
    if any_devmem {
        routes.push((addrmap::DEVMEM, host.rc));
    }
    t.define(
        host.membus,
        "membus",
        NodeSpec::Xbar {
            cfg: cfg.membus,
            default: host.host_mem,
            routes,
        },
    );
    let mut uncached = vec![addrmap::DEVICE_BAR];
    if any_devmem {
        uncached.push(addrmap::DEVMEM);
    }
    t.define(
        host.cpu,
        "cpu",
        NodeSpec::Cpu {
            cfg: cfg.cpu,
            dcache: host.l1d,
            membus: host.membus,
            uncached,
        },
    );
    t.validate()?;
    Ok(t)
}

/// Host-side nodes shared by the tree preset. `membus`, `cpu`, `rc` and
/// `link_rc_down` are reserved only — the caller defines them once the
/// device side (and therefore the routed ranges) is known.
struct TreeHostSide {
    host_mem: NodeId,
    membus: NodeId,
    l1d: NodeId,
    cpu: NodeId,
    rc: NodeId,
    rc_host_target: NodeId,
    link_rc_down: NodeId,
}

fn host_side_nodes(t: &mut TopologySpec, cfg: &SystemConfig) -> TreeHostSide {
    let dc = cfg.access_mode == AccessMode::DirectCache;
    let host_mem = t.reserve();
    let membus = t.reserve();
    let llc = t.reserve();
    let l1d = t.reserve();
    let iocache = dc.then(|| t.reserve());
    let cpu = t.reserve();
    let smmu = cfg.smmu.is_some().then(|| t.reserve());
    let rc = t.reserve();
    let link_rc_down = t.reserve();

    t.define(host_mem, "host_mem", NodeSpec::Memory { cfg: cfg.host_mem });
    let rc_host_target = define_host_caches(t, cfg, membus, llc, l1d, iocache, smmu);
    if let Some(id) = smmu {
        t.set_smmu(id);
    }
    t.set_cpu(cpu);
    TreeHostSide {
        host_mem,
        membus,
        l1d,
        cpu,
        rc,
        rc_host_target,
        link_rc_down,
    }
}

/// Define the cache hierarchy and SMMU into their reserved slots — the
/// host-side spine shared verbatim by the classic lowering and the tree
/// preset. Returns the node device-originated traffic enters after the
/// root complex (SMMU, IOCache or MemBus).
fn define_host_caches(
    t: &mut TopologySpec,
    cfg: &SystemConfig,
    membus: NodeId,
    llc: NodeId,
    l1d: NodeId,
    iocache: Option<NodeId>,
    smmu: Option<NodeId>,
) -> NodeId {
    let dc = cfg.access_mode == AccessMode::DirectCache;
    t.define(
        llc,
        "llc",
        NodeSpec::Cache {
            cfg: cfg.llc,
            downstream: membus,
            coherent_cpu_cache: (cfg.coherent && dc).then_some(l1d),
        },
    );
    t.define(
        l1d,
        "l1d",
        NodeSpec::Cache {
            cfg: cfg.l1d,
            downstream: llc,
            coherent_cpu_cache: None,
        },
    );
    if let Some(id) = iocache {
        t.define(
            id,
            "iocache",
            NodeSpec::Cache {
                cfg: cfg.iocache,
                downstream: llc,
                coherent_cpu_cache: None,
            },
        );
    }
    let io_entry = iocache.unwrap_or(membus);
    if let (Some(id), Some(smmu_cfg)) = (smmu, cfg.smmu.as_ref()) {
        t.define(
            id,
            "smmu",
            NodeSpec::Smmu {
                cfg: *smmu_cfg,
                downstream: io_entry,
            },
        );
    }
    smmu.unwrap_or(io_entry)
}

struct TreeBuilder<'a, F: Fn(usize) -> EndpointOptions> {
    t: &'a mut TopologySpec,
    cfg: &'a SystemConfig,
    opts: &'a F,
    next_ep: usize,
    pcie_modules: Vec<NodeId>,
    any_devmem: bool,
    /// Activation window inside the first local-memory endpoint's slice.
    act_base: Option<u64>,
}

/// Offset of the CPU activation window inside a device-memory slice —
/// past the job data regions at the slice base, leaving room for the
/// streamed write window at `+0x0800_0000` within the 256 MiB slice.
const TREE_ACT_OFFSET: u64 = 0x0400_0000;

impl<F: Fn(usize) -> EndpointOptions> TreeBuilder<'_, F> {
    /// Build the switch at `path` and its whole subtree; returns the
    /// switch node. The caller wires the parent egress link to it.
    /// `up_target` is the module above (parent switch or root complex).
    fn switch(
        &mut self,
        levels: &[u32],
        path: &str,
        up_target: NodeId,
    ) -> Result<NodeId, BuildError> {
        let (fanout, rest) = levels.split_first().expect("levels checked non-empty");
        let sw = self.t.reserve();
        self.pcie_modules.push(sw);
        let up_link = self.t.add(
            format!("link.sw{path}.up"),
            NodeSpec::PcieLink {
                cfg: self.cfg.pcie.link,
                dst: up_target,
            },
        );
        let mut ports = Vec::new();
        for j in 0..*fanout as usize {
            let child_path = format!("{path}.{j}");
            let (downstream, ranges) = if rest.is_empty() {
                self.endpoint(sw)?
            } else {
                let child = self.switch(rest, &child_path, sw)?;
                (child, self.subtree_ranges(child))
            };
            let egress = self.t.add(
                format!("link.sw{path}.down{j}"),
                NodeSpec::PcieLink {
                    cfg: self.cfg.pcie.link,
                    dst: downstream,
                },
            );
            ports.push(SwitchPortSpec {
                egress_link: egress,
                downstream,
                ranges: aggregate_ranges(ranges),
            });
        }
        self.t.define(
            sw,
            format!("pcie.sw{path}"),
            NodeSpec::Switch {
                cfg: self.cfg.pcie.switch,
                up_link,
                ports,
            },
        );
        Ok(sw)
    }

    /// The aggregated claims of an already-built child switch.
    fn subtree_ranges(&self, child: NodeId) -> Vec<AddrRange> {
        match &self.t.node(child).expect("child defined").spec {
            NodeSpec::Switch { ports, .. } => ports
                .iter()
                .flat_map(|p| p.ranges.iter().copied())
                .collect(),
            _ => unreachable!("subtree_ranges is only called on switches"),
        }
    }

    /// Build leaf endpoint `self.next_ep` under switch `sw`; returns the
    /// endpoint node and the ranges it claims.
    fn endpoint(&mut self, sw: NodeId) -> Result<(NodeId, Vec<AddrRange>), BuildError> {
        let i = self.next_ep;
        self.next_ep += 1;
        let opts = (self.opts)(i);
        let accel_cfg = opts.accel.unwrap_or(self.cfg.accel);
        let dev_mem = opts.dev_mem.or_else(|| {
            (self.cfg.mem_location == MemoryLocation::Device)
                .then_some(self.cfg.dev_mem)
                .flatten()
        });
        let bar = addrmap::device_bar(i);

        let ep = self.t.reserve();
        self.pcie_modules.push(ep);
        let up_link = self.t.add(
            format!("link.ep{i}.up"),
            NodeSpec::PcieLink {
                cfg: self.cfg.pcie.link,
                dst: sw,
            },
        );
        let dma = self
            .t
            .add(format!("dma{i}"), NodeSpec::Dma { cfg: self.cfg.dma });
        let ctrl = self.t.add(
            format!("accel{i}"),
            NodeSpec::Accel {
                cfg: accel_cfg,
                dma,
                ep,
            },
        );
        let mut ranges = vec![bar];
        let mut inward = Vec::new();
        let data = if let Some(mem_cfg) = dev_mem {
            self.any_devmem = true;
            let slice = addrmap::devmem_slice(i);
            if self.act_base.is_none() {
                self.act_base = Some(slice.base + TREE_ACT_OFFSET);
            }
            let mem = self
                .t
                .add(format!("dev_mem{i}"), NodeSpec::Memory { cfg: mem_cfg });
            let xbar = self.t.add(
                format!("devmem_ctrl{i}"),
                NodeSpec::Xbar {
                    cfg: DEVMEM_XBAR,
                    default: mem,
                    routes: Vec::new(),
                },
            );
            ranges.push(slice);
            inward.push((slice, xbar));
            DataPlacement::Device {
                xbar,
                base: slice.base,
            }
        } else {
            DataPlacement::Host {
                base: if self.cfg.smmu.is_some() {
                    addrmap::ACCEL_VA_BASE + i as u64 * HOST_DATA_STRIDE
                } else {
                    addrmap::DATA_PA_BASE + i as u64 * HOST_DATA_STRIDE
                },
                virt: self.cfg.smmu.is_some(),
            }
        };
        self.t.define(
            ep,
            format!("pcie.ep{i}"),
            NodeSpec::Endpoint {
                cfg: self.cfg.pcie.ep,
                up_link,
                mmio_target: ctrl,
                bar,
                inward,
            },
        );
        self.t.add_device(DeviceSpec {
            ctrl,
            dma,
            ep,
            doorbell: addrmap::doorbell(i),
            data,
        });
        Ok((ep, ranges))
    }
}

// The parallel sweep engine builds specs inside worker closures.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TopologySpec>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_mem::MemTech;

    #[test]
    fn baseline_lowering_validates_and_instantiates() {
        let cfg = SystemConfig::paper_baseline();
        let spec = cfg.topology().unwrap();
        spec.validate().unwrap();
        let mut kernel = Kernel::new();
        let handles = spec.instantiate(&mut kernel).unwrap();
        assert_eq!(kernel.module_count(), spec.len());
        assert_eq!(handles.devices.len(), 1);
        assert_eq!(
            handles.lookup("pcie.rc"),
            Some(handles.module_id(NodeId(7)))
        );
        // No placeholder holes: every module reports under its real name.
        let stats = kernel.stats();
        assert!(stats.iter().all(|(k, _)| !k.starts_with("placeholder")));
    }

    #[test]
    fn holes_and_dangling_edges_are_rejected() {
        let mut t = TopologySpec::new();
        let hole = t.reserve();
        assert!(matches!(
            t.validate(),
            Err(BuildError::InvalidConfig(msg)) if msg.contains("never defined")
        ));
        let mem = t.reserve();
        t.define(
            mem,
            "mem",
            NodeSpec::Memory {
                cfg: MemBackendConfig::Dram(MemTech::Ddr4),
            },
        );
        t.define(
            hole,
            "bus",
            NodeSpec::Xbar {
                cfg: XbarConfig::default(),
                default: NodeId(99),
                routes: Vec::new(),
            },
        );
        assert!(matches!(
            t.validate(),
            Err(BuildError::InvalidConfig(msg)) if msg.contains("undefined node")
        ));
    }

    #[test]
    fn duplicate_names_are_rejected_before_the_kernel_sees_them() {
        let mut cfgd = SystemConfig::paper_baseline().topology().unwrap();
        // Stamp a second node with an existing name.
        let twin = cfgd.reserve();
        cfgd.define(
            twin,
            "host_mem",
            NodeSpec::Memory {
                cfg: MemBackendConfig::Dram(MemTech::Ddr4),
            },
        );
        let err = cfgd.validate().unwrap_err();
        assert!(err.to_string().contains("duplicate module name"));
    }

    #[test]
    fn route_depth_is_computed_and_bounded() {
        let cfg = SystemConfig::paper_baseline();
        let spec = cfg.topology().unwrap();
        // Baseline DMA path: dma, ep, switch, rc, smmu, iocache, llc,
        // membus = 8 pushes.
        assert_eq!(spec.max_request_depth(), 8);

        // Depth grows by one per extra switch level; the validator draws
        // the line exactly at MAX_ROUTE_DEPTH.
        let tree = switch_tree(&cfg, &[2, 2]).unwrap();
        assert_eq!(tree.max_request_depth(), 9);
        let deep = switch_tree(&cfg, &[2, 2, 2, 2]).unwrap();
        assert_eq!(deep.max_request_depth(), 11);
        // Five switch levels still fit (the deepest path is a would-be
        // peer-to-peer route: up the whole tree and down a sibling
        // branch, which the switch model routes by address).
        let five = switch_tree(&cfg, &[2, 1, 1, 1, 1]).unwrap();
        assert_eq!(five.max_request_depth(), MAX_ROUTE_DEPTH);
        // Six levels overflow: 13 via host memory, 14 peer-to-peer.
        let too_deep = switch_tree(&cfg, &[2, 2, 1, 1, 1, 1]);
        assert!(matches!(
            too_deep,
            Err(BuildError::RouteDepthExceeded { depth: 14, max }) if max == MAX_ROUTE_DEPTH
        ));
    }

    #[test]
    fn tree_endpoint_count_errors_come_from_the_addrmap_carving() {
        let cfg = SystemConfig::paper_baseline();
        let err = switch_tree(&cfg, &[2, 16]).unwrap_err();
        assert!(
            err.to_string().contains("BAR window carving") && err.to_string().contains("32"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn tree_ports_claim_aggregated_subtree_ranges() {
        let cfg = SystemConfig::paper_baseline();
        let spec = switch_tree(&cfg, &[2, 4]).unwrap();
        // Find the root switch and check each of its two ports claims one
        // contiguous 4-BAR aggregate.
        let root = spec
            .nodes
            .iter()
            .flatten()
            .find(|n| n.name == "pcie.sw0")
            .expect("root switch exists");
        let NodeSpec::Switch { ports, .. } = &root.spec else {
            panic!("pcie.sw0 is a switch");
        };
        assert_eq!(ports.len(), 2);
        for (j, port) in ports.iter().enumerate() {
            assert_eq!(port.ranges.len(), 1, "port {j} claims one aggregate");
            assert_eq!(port.ranges[0].size, 4 * addrmap::BAR_STRIDE);
            assert_eq!(
                port.ranges[0].base,
                addrmap::device_bar(j * 4).base,
                "port {j} fronts endpoints {}..{}",
                j * 4,
                j * 4 + 4
            );
        }
    }

    #[test]
    fn heterogeneous_trees_mix_memory_placements() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.smmu = None;
        let spec = switch_tree_with(&cfg, &[2], |i| EndpointOptions {
            accel: None,
            dev_mem: (i == 1).then_some(MemBackendConfig::Dram(MemTech::Hbm2)),
        })
        .unwrap();
        spec.validate().unwrap();
        assert!(matches!(
            spec.devices()[0].data,
            DataPlacement::Host { virt: false, .. }
        ));
        assert!(matches!(
            spec.devices()[1].data,
            DataPlacement::Device { .. }
        ));
        let mut kernel = Kernel::new();
        let handles = spec.instantiate(&mut kernel).unwrap();
        assert!(handles.lookup("dev_mem1").is_some());
        assert!(handles.lookup("dev_mem0").is_none());
    }

    #[test]
    fn overlapping_sibling_claims_are_rejected() {
        let cfg = SystemConfig::paper_baseline();
        let mut spec = switch_tree(&cfg, &[2]).unwrap();
        // Corrupt the root switch: make both ports claim endpoint 0's BAR.
        for node in spec.nodes.iter_mut().flatten() {
            if let NodeSpec::Switch { ports, .. } = &mut node.spec {
                let claim = ports[0].ranges.clone();
                ports[1].ranges = claim;
            }
        }
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("overlap"), "got: {err}");
    }

    #[test]
    fn unreachable_nodes_are_rejected() {
        let mut spec = SystemConfig::paper_baseline().topology().unwrap();
        spec.add(
            "orphan",
            NodeSpec::Memory {
                cfg: MemBackendConfig::Dram(MemTech::Ddr4),
            },
        );
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("unreachable"), "got: {err}");
    }
}
