//! Property tests over the topology layer: randomly shaped *valid*
//! switch trees (depth × fan-out × memory placement × SMMU) must
//! validate, instantiate with no placeholder holes, run a sharded GEMM
//! on every leaf, and keep the parallel-sweep determinism contract —
//! `jobs=1` and `jobs=N` sweeps stay byte-identical on every topology,
//! not just the Fig. 1 preset.

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{AccessMode, MemBackendConfig, Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;
use proptest::prelude::*;

fn random_config(smmu: bool, direct_memory: bool) -> SystemConfig {
    let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    if !smmu {
        cfg.smmu = None;
    }
    if direct_memory {
        cfg.access_mode = AccessMode::DirectMemory;
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_valid_trees_build_and_run(
        depth in 1usize..3,
        fanout in 1u32..4,
        smmu in any::<bool>(),
        direct_memory in any::<bool>(),
        devmem_on_odd in any::<bool>(),
    ) {
        let levels = vec![fanout; depth];
        let endpoints = fanout.pow(depth as u32) as usize;
        let cfg = random_config(smmu, direct_memory);
        let spec = switch_tree_with(&cfg, &levels, |i| EndpointOptions {
            accel: None,
            dev_mem: (devmem_on_odd && i % 2 == 1)
                .then_some(MemBackendConfig::Dram(MemTech::Hbm2)),
        })
        .expect("generated trees are valid");
        spec.validate().expect("presets validate");
        prop_assert_eq!(spec.devices().len(), endpoints);

        // Instantiate: every reserved slot must hold a real module (a
        // placeholder hole would panic mid-run on first delivery).
        let mut sim = Simulation::from_topology(cfg, &spec).expect("valid topology");
        let stats = sim.stats();
        prop_assert!(
            stats.iter().all(|(k, _)| !k.starts_with("placeholder")),
            "placeholder hole in instantiated topology"
        );

        // A small GEMM shards onto every leaf and completes (96 rows
        // splits into at least one row per device up to 16 leaves).
        let report = sim.run_gemm_sharded(GemmSpec::square(96)).expect("gemm completes");
        prop_assert_eq!(report.jobs.len(), endpoints);
        prop_assert!(report.total_time_ns() > 0.0);
        for i in 0..endpoints {
            prop_assert!(
                report.stats.get_or_zero(&format!("accel{i}.jobs_done")) >= 1.0,
                "leaf {} idle", i
            );
        }

        // Sweep determinism across worker counts holds on this topology.
        let shape = levels.clone();
        let make_sweep = || {
            let cfg = random_config(smmu, direct_memory);
            let shape = shape.clone();
            Grid::new("topo-prop", [48u32, 64]).sweep(move |&m| {
                let spec = switch_tree_with(&cfg, &shape, |i| EndpointOptions {
                    accel: None,
                    dev_mem: (devmem_on_odd && i % 2 == 1)
                        .then_some(MemBackendConfig::Dram(MemTech::Hbm2)),
                })
                .expect("valid");
                let mut sim = Simulation::from_topology(cfg.clone(), &spec).expect("valid");
                sim.run_gemm_sharded(GemmSpec::square(m)).expect("completes").stats
            })
        };
        let serial = make_sweep().run(Jobs::serial()).to_json().expect("serializes");
        let parallel = make_sweep().run(Jobs::new(2)).to_json().expect("serializes");
        prop_assert_eq!(serial, parallel, "jobs=1 vs jobs=2 JSON diverged");
    }
}
