//! The parallel domain engine's contract at the system level: the
//! topology partitioner must cut the Fig. 1 platform at its PCIe
//! latency boundaries, and a simulation run with any worker count must
//! produce byte-identical observable results — full module-counter
//! reports and serialized run reports, not just end times.

use accesys::sim::{Kernel, Stats};
use accesys::topology::switch_tree;
use accesys::{RunReport, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// Partition the paper-baseline topology and hand back the domain
/// count plus the lookahead (in ticks).
fn partition_of(cfg: &SystemConfig) -> (usize, u64) {
    let spec = cfg.topology().expect("valid config");
    let mut kernel = Kernel::new();
    let handles = spec.instantiate(&mut kernel).expect("instantiates");
    let p = spec
        .partition(&handles)
        .expect("PCIe topologies must partition");
    // Every registered module lands in exactly one domain.
    let mut seen = std::collections::BTreeSet::new();
    for dom in &p.domains {
        for &m in dom {
            assert!(seen.insert(m), "module {m} assigned to two domains");
        }
    }
    assert_eq!(
        seen.len(),
        kernel.module_count(),
        "every module must be covered"
    );
    (p.domains.len(), p.lookahead)
}

#[test]
fn paper_baseline_partitions_at_the_pcie_boundary() {
    let (domains, lookahead) = partition_of(&SystemConfig::paper_baseline());
    // Host side and device side at minimum; the switch's store-and-
    // forward stage may form its own domain.
    assert!(domains >= 2, "expected >= 2 domains, got {domains}");
    assert!(lookahead >= 1, "lookahead must be a usable window");
}

#[test]
fn switch_trees_give_each_leaf_its_own_domain() {
    let cfg = SystemConfig::paper_baseline().with_accel_count(4);
    let spec = switch_tree(&cfg, &[4]).expect("tree builds");
    let mut kernel = Kernel::new();
    let handles = spec.instantiate(&mut kernel).expect("instantiates");
    let p = spec.partition(&handles).expect("trees partition");
    // One host domain, the root switch, and one domain per endpoint.
    assert!(
        p.domains.len() >= 6,
        "expected host + switch + 4 leaves, got {}",
        p.domains.len()
    );
}

#[test]
fn cxl_topologies_fall_back_to_sequential() {
    // CXL flit links are never cut, so the whole platform collapses
    // into one domain and partition() reports nothing to parallelize.
    let cfg = SystemConfig::cxl_host(8, MemTech::Ddr4);
    let spec = cfg.topology().expect("valid config");
    let mut kernel = Kernel::new();
    let handles = spec.instantiate(&mut kernel).expect("instantiates");
    assert!(spec.partition(&handles).is_none());
}

/// Run one GEMM with `threads` workers and return everything an
/// experiment could observe: the serialized run report and the full
/// stats dump.
fn observable_run(threads: u32) -> (String, Stats, RunReport) {
    let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    cfg.kernel_threads = threads;
    let mut sim = Simulation::new(cfg).expect("valid config");
    let report = sim.run_gemm(GemmSpec::square(96)).expect("gemm completes");
    let json = serde_json::to_string(&report).expect("report serializes");
    (json, sim.stats(), report)
}

#[test]
fn gemm_results_are_byte_identical_across_thread_counts() {
    let (json1, stats1, rep1) = observable_run(1);
    for threads in [2, 4] {
        let (json_n, stats_n, rep_n) = observable_run(threads);
        assert_eq!(json1, json_n, "run report diverged at {threads} threads");
        assert_eq!(stats1, stats_n, "stats diverged at {threads} threads");
        assert_eq!(
            rep1.total_time_ns().to_bits(),
            rep_n.total_time_ns().to_bits()
        );
    }
}

#[test]
fn sharded_multi_accel_runs_match_across_thread_counts() {
    // Four accelerators behind the switch: the richest domain graph the
    // standard topology produces, with cross-domain traffic on every
    // DMA channel.
    let run = |threads: u32| {
        let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4).with_accel_count(4);
        cfg.kernel_threads = threads;
        let mut sim = Simulation::new(cfg).expect("valid config");
        let report = sim
            .run_gemm_sharded(GemmSpec::square(128))
            .expect("sharded gemm completes");
        (serde_json::to_string(&report).unwrap(), sim.stats())
    };
    let baseline = run(1);
    assert_eq!(baseline, run(2));
    assert_eq!(baseline, run(4));
}
