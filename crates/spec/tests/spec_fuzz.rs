//! Fuzz properties of the staged loader: whatever text comes in,
//! the answer is `Ok(Spec)` or a typed [`accesys_spec::SpecError`] —
//! never a panic. Randomly *generated* valid specs must additionally
//! load and dry-build; randomly *mutated* committed specs may land on
//! either side, but must stay typed.

use accesys_exp::Scale;
use accesys_spec::load_str;
use proptest::prelude::*;

/// The committed library, embedded as the mutation corpus.
const CORPUS: &[&str] = &[
    include_str!("../../../specs/paper_baseline.spec"),
    include_str!("../../../specs/switch_trees.spec"),
    include_str!("../../../specs/pipelined_encoder.spec"),
    include_str!("../../../specs/two_tenant_mix.spec"),
    include_str!("../../../specs/llm_decode.spec"),
    include_str!("../../../specs/kv_pressure.spec"),
];

const MEMS: &[&str] = &["ddr3", "ddr4", "ddr5", "hbm2", "gddr6", "lpddr5"];

/// Build a random—but valid by construction—roofline spec.
fn valid_roofline(link: u32, mem: usize, matrix: u32, points: &[u32]) -> String {
    let axis: Vec<String> = points.iter().map(|p| format!("{p}.0")).collect();
    format!(
        "[scenario]\nkind = \"roofline\"\nname = \"fuzz\"\n\n\
         [topology]\nlink_gbps = {link}.0\nhost_mem = \"{}\"\n\n\
         [workload]\nkind = \"gemm\"\nmatrix = {matrix}\n\n\
         [sweep]\ncompute_ns = [{}]\n",
        MEMS[mem % MEMS.len()],
        axis.join(", ")
    )
}

/// Build a random valid decode spec whose KV budgets respect both the
/// one-request floor and the engine cap.
fn valid_decode(hidden: u32, layers: u32, prompt: u32, decode: u32, tight_pct: u32) -> String {
    // KV per token is heads-independent: 2 * hidden * layers * 4 B.
    let per_token = u64::from(2 * hidden * layers * 4);
    let need = per_token * u64::from(prompt + decode);
    let ample = (need * 4).min(32 * 1024 * 1024);
    format!(
        "[scenario]\nkind = \"decode\"\nname = \"fuzz\"\n\n\
         [topology]\nlink_gbps = 16.0\nhost_mem = \"ddr4\"\ncompute_ns = 5000.0\n\
         devmem = \"hbm2\"\n\n\
         [workload]\nkind = \"llm\"\nhidden = {hidden}\nheads = 4\nmlp = 128\n\
         layers = {layers}\nprompt = {prompt}\ndecode = {decode}\n\n\
         [traffic]\nprocess = \"poisson\"\ntenants = 2\nseed = 7\nhorizon_ns = 2000000\n\n\
         [policy]\nkind = \"round_robin\"\nbatch_cap = \"auto\"\nqueue_cap = 8\n\
         slo_ns = 2000000.0\n\n\
         [kv]\nample_bytes = {ample}\ntight_pct = {tight_pct}\n\n\
         [sweep]\nshapes = [\"2\"]\nrates = [100.0]\nbudgets = [\"ample\", \"tight\"]\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_valid_rooflines_load_and_dry_build(
        link in 1u32..64,
        mem in 0usize..6,
        matrix in 16u32..256,
        points in proptest::collection::vec(50u32..10_000, 1..6),
    ) {
        let text = valid_roofline(link, mem, matrix, &points);
        let spec = match load_str(&text) {
            Ok(spec) => spec,
            Err(e) => return Err(TestCaseError::fail(format!("valid spec rejected: {e}\n{text}"))),
        };
        if let Err(e) = spec.dry_build(Scale::Quick) {
            return Err(TestCaseError::fail(format!("valid spec failed dry-build: {e}")));
        }
        prop_assert_eq!(spec.scenario.name(), "fuzz");
    }

    #[test]
    fn generated_valid_decodes_load_and_dry_build(
        hidden in 1u32..16,
        layers in 1u32..4,
        prompt in 1u32..32,
        decode in 1u32..16,
        tight in 100u32..300,
    ) {
        let hidden = hidden * 16; // heads=4 must divide hidden
        let text = valid_decode(hidden, layers, prompt, decode, tight);
        let spec = match load_str(&text) {
            Ok(spec) => spec,
            Err(e) => return Err(TestCaseError::fail(format!("valid spec rejected: {e}\n{text}"))),
        };
        if let Err(e) = spec.dry_build(Scale::Quick) {
            return Err(TestCaseError::fail(format!("valid spec failed dry-build: {e}")));
        }
    }
}

/// Apply one deterministic mutation to `text`, driven by fuzz ints.
fn mutate(text: &str, op: usize, at: usize, with: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let pick = |n: usize| if n == 0 { 0 } else { at % n };
    match op % 7 {
        // Delete a line.
        0 if !lines.is_empty() => {
            let i = pick(lines.len());
            let mut out = lines.clone();
            out.remove(i);
            out.join("\n")
        }
        // Duplicate a line (dup keys/sections must be diagnosed).
        1 if !lines.is_empty() => {
            let i = pick(lines.len());
            let mut out = lines.clone();
            out.insert(i, lines[i]);
            out.join("\n")
        }
        0 | 1 => text.to_string(),
        // Truncate mid-text (possibly mid-token, mid-string).
        2 => {
            let chars: Vec<char> = text.chars().collect();
            chars[..pick(chars.len())].iter().collect()
        }
        // Replace one character with printable garbage.
        3 => {
            let mut chars: Vec<char> = text.chars().collect();
            if !chars.is_empty() {
                let i = pick(chars.len());
                chars[i] = (b' ' + (with % 94) as u8) as char;
            }
            chars.into_iter().collect()
        }
        // Swap two lines (entries before sections, headers reordered).
        4 => {
            let mut out = lines.clone();
            if out.len() >= 2 {
                let i = pick(out.len());
                let j = with % out.len();
                out.swap(i, j);
            }
            out.join("\n")
        }
        // Inject a malformed line.
        5 => {
            let garbage = ["= 3", "[unclosed", "key = ", "\"stray\"", "x = [1,"];
            let mut out = lines.clone();
            out.insert(pick(out.len() + 1), garbage[with % garbage.len()]);
            out.join("\n")
        }
        // Scramble a number (type/range errors, huge values).
        _ => text.replacen(char::is_numeric, &format!("{}", u64::MAX), 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_committed_specs_load_or_fail_typed_never_panic(
        which in 0usize..6,
        op in 0usize..7,
        at in 0usize..4096,
        with in 0usize..4096,
        twice in any::<bool>(),
    ) {
        let mut text = mutate(CORPUS[which], op, at, with);
        if twice {
            text = mutate(&text, op.wrapping_add(with), with, at);
        }
        // The property is the absence of panics: both arms are legal.
        match load_str(&text) {
            Ok(spec) => {
                // A mutation that stays valid must still dry-build
                // without panicking (either outcome is in-contract).
                let _ = spec.dry_build(Scale::Quick);
            }
            Err(e) => {
                // Diagnostics always render.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
