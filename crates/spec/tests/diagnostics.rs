//! Diagnostic snapshot tests: the loader's error messages are part of
//! its contract. Each case pins the exact `Display` rendering — with
//! its 1-based line and `section.key` field — so tooling that matches
//! on diagnostics never breaks silently.

use accesys_spec::{load_str, SpecError};

/// The 1-based line of the first line containing `marker`.
fn line_of(text: &str, marker: &str) -> u32 {
    text.lines()
        .position(|l| l.contains(marker))
        .map(|i| i as u32 + 1)
        .unwrap_or_else(|| panic!("marker {marker:?} not in spec text"))
}

/// Load `text`, expecting the exact diagnostic `message` pointing at
/// the line containing `marker` and at `field`.
fn expect_diag(text: &str, marker: &str, field: Option<&str>, message: &str) -> SpecError {
    let err = load_str(text).expect_err("spec must be rejected");
    assert_eq!(err.to_string(), message, "diagnostic text drifted");
    assert_eq!(err.line(), Some(line_of(text, marker)), "span drifted");
    assert_eq!(err.field().as_deref(), field, "field attribution drifted");
    err
}

const ROOFLINE_OK: &str = r#"
[scenario]
kind = "roofline"
name = "diag"

[topology]
link_gbps = 8.0
host_mem = "ddr4"

[workload]
kind = "gemm"
matrix = 64
matrix_full = 128

[sweep]
compute_ns = [100.0, 500.0]
"#;

#[test]
fn the_baseline_fixture_is_actually_valid() {
    let spec = load_str(ROOFLINE_OK).expect("fixture loads");
    assert_eq!(spec.scenario.name(), "diag");
}

#[test]
fn unknown_key_names_the_key_its_section_and_its_line() {
    let text = ROOFLINE_OK.replace("matrix_full = 128", "matirx_full = 128");
    let err = expect_diag(
        &text,
        "matirx_full",
        Some("workload.matirx_full"),
        "line 13: unknown key `matirx_full` in [workload]",
    );
    assert!(matches!(err, SpecError::UnknownKey { .. }));
}

#[test]
fn dangling_device_reference_names_the_device_and_the_endpoint_count() {
    // devices pins stage homes; dev7 does not exist on the smallest
    // swept tree (2 leaves).
    let text = r#"
[scenario]
kind = "pipeline"
name = "diag"

[topology]
link_gbps = 16.0
host_mem = "ddr4"
devmem = "hbm2"

[workload]
kind = "encoder_pipeline"
seq = 16
hidden = 64
heads = 4
mlp = 128
layers = 4
images = 2
devices = [0, 7]

[sweep]
shapes = ["2", "2x2"]
"#;
    let err = expect_diag(
        text,
        "devices = [0, 7]",
        Some("workload.devices"),
        "line 19: `workload.devices` references `dev7`, but the topology has only 2 endpoint(s)",
    );
    assert!(matches!(err, SpecError::DanglingDevice { .. }));
}

const DECODE_OK: &str = r#"
[scenario]
kind = "decode"
name = "diag"

[topology]
link_gbps = 16.0
host_mem = "ddr4"
compute_ns = 5000.0
devmem = "hbm2"

[workload]
kind = "llm"
hidden = 64
heads = 4
mlp = 128
layers = 2
prompt = 12
decode = 6

[traffic]
process = "poisson"
tenants = 2
seed = 1
horizon_ns = 1000000

[policy]
kind = "fifo"
batch_cap = "auto"
queue_cap = 16
slo_ns = 1000000.0

[kv]
ample_bytes = 1048576
tight_pct = 150

[sweep]
shapes = ["2"]
rates = [100.0]
budgets = ["ample", "tight"]
"#;

#[test]
fn the_decode_fixture_is_actually_valid() {
    let spec = load_str(DECODE_OK).expect("fixture loads");
    assert_eq!(spec.scenario.kind(), "decode");
}

#[test]
fn duplicate_swept_name_points_at_the_list_line() {
    let text = DECODE_OK.replace(
        r#"budgets = ["ample", "tight"]"#,
        r#"budgets = ["ample", "ample"]"#,
    );
    let err = expect_diag(
        &text,
        "budgets =",
        Some("sweep.budgets"),
        "line 40: duplicate name `ample` in `sweep.budgets`",
    );
    assert!(matches!(err, SpecError::DuplicateName { .. }));
}

#[test]
fn kv_budget_too_small_for_one_request_is_rejected_with_both_numbers() {
    // 18 tokens x 1024 B/token for this model: one request needs
    // 18432 bytes; 1024 cannot hold it.
    let text = DECODE_OK.replace("ample_bytes = 1048576", "ample_bytes = 1024");
    let err = expect_diag(
        &text,
        "ample_bytes",
        Some("kv.ample_bytes"),
        "line 34: KV budget `kv.ample_bytes` holds 1024 bytes, \
         but one request needs 18432 bytes of KV cache",
    );
    assert!(matches!(err, SpecError::KvBudget { .. }));
}

#[test]
fn kv_budget_over_the_engine_cap_is_rejected() {
    let text = DECODE_OK.replace("ample_bytes = 1048576", "ample_bytes = 67108864");
    expect_diag(
        &text,
        "ample_bytes",
        Some("kv.ample_bytes"),
        "line 34: KV budget `kv.ample_bytes` holds 67108864 bytes, \
         over the engine cap of 33554432 bytes",
    );
}

#[test]
fn duplicate_key_points_at_the_second_occurrence() {
    let text = ROOFLINE_OK.replace("matrix = 64", "matrix = 64\nmatrix = 65");
    let err = expect_diag(
        &text,
        "matrix = 65",
        Some("workload.matrix"),
        "line 13: duplicate key `workload.matrix`",
    );
    assert!(matches!(err, SpecError::DuplicateKey { .. }));
}

#[test]
fn type_mismatch_names_field_expected_and_found() {
    let text = ROOFLINE_OK.replace("link_gbps = 8.0", "link_gbps = \"fast\"");
    let err = expect_diag(
        &text,
        "link_gbps",
        Some("topology.link_gbps"),
        "line 7: `topology.link_gbps` expects a number, got a string",
    );
    assert!(matches!(err, SpecError::Type { .. }));
}

#[test]
fn missing_section_and_key_have_no_span_but_name_the_schema_slot() {
    let text = ROOFLINE_OK.replace("[sweep]\ncompute_ns = [100.0, 500.0]\n", "");
    let err = load_str(&text).expect_err("missing section rejected");
    assert_eq!(err.to_string(), "missing required section `[sweep]`");
    assert_eq!(err.line(), None);

    let text = ROOFLINE_OK.replace("matrix = 64\n", "");
    let err = load_str(&text).expect_err("missing key rejected");
    assert_eq!(
        err.to_string(),
        "missing required key `matrix` in [workload]"
    );
    assert_eq!(err.field().as_deref(), Some("workload.matrix"));
}

#[test]
fn oversized_tree_shape_is_rejected_against_the_address_map_cap() {
    let text = DECODE_OK.replace(r#"shapes = ["2"]"#, r#"shapes = ["4x8"]"#);
    expect_diag(
        &text,
        "shapes =",
        Some("sweep.shapes"),
        "line 38: `sweep.shapes` shape \"4x8\" has 32 endpoints, \
         over the address-map cap of 16",
    );
}

/// The baseline fixture plus a `[kernel]` section carrying `line`.
fn with_kernel(line: &str) -> String {
    format!("{ROOFLINE_OK}\n[kernel]\n{line}\n")
}

#[test]
fn kernel_threads_resolves_onto_the_system() {
    let spec = load_str(&with_kernel("threads = 4")).expect("kernel section loads");
    let accesys_spec::Scenario::Roofline(sc) = &spec.scenario else {
        panic!("fixture is a roofline scenario");
    };
    assert_eq!(sc.system.kernel_threads, Some(4));

    // Absent section: the knob stays unset (SystemConfig default wins).
    let spec = load_str(ROOFLINE_OK).expect("fixture loads");
    let accesys_spec::Scenario::Roofline(sc) = &spec.scenario else {
        panic!("fixture is a roofline scenario");
    };
    assert_eq!(sc.system.kernel_threads, None);
}

#[test]
fn kernel_threads_zero_is_rejected() {
    let text = with_kernel("threads = 0");
    let err = expect_diag(
        &text,
        "threads = 0",
        Some("kernel.threads"),
        "line 19: `kernel.threads` must be positive (1 = sequential)",
    );
    assert!(matches!(err, SpecError::Invalid { .. }));
}

#[test]
fn kernel_threads_over_the_engine_cap_is_rejected() {
    let text = with_kernel("threads = 4096");
    expect_diag(
        &text,
        "threads = 4096",
        Some("kernel.threads"),
        "line 19: `kernel.threads` is 4096, over the engine cap of 512 threads",
    );
}

#[test]
fn kernel_threads_type_mismatch_is_a_typed_error() {
    let text = with_kernel("threads = \"many\"");
    let err = expect_diag(
        &text,
        "threads =",
        Some("kernel.threads"),
        "line 19: `kernel.threads` expects a non-negative integer, got a string",
    );
    assert!(matches!(err, SpecError::Type { .. }));
}

#[test]
fn unknown_kernel_key_is_rejected() {
    let text = with_kernel("cores = 4");
    let err = expect_diag(
        &text,
        "cores = 4",
        Some("kernel.cores"),
        "line 19: unknown key `cores` in [kernel]",
    );
    assert!(matches!(err, SpecError::UnknownKey { .. }));
}

// ---------------------------------------------------------------------
// The `[fleet]` section (fleet scale-out scenarios).

const FLEET_OK: &str = r#"
[scenario]
kind = "fleet"
name = "diag"

[topology]
link_gbps = 16.0
host_mem = "ddr4"
compute_ns = 5000.0

[workload]
kind = "encoder_request"
seq = 16
hidden = 64
heads = 4
mlp = 128
slices = 2

[traffic]
process = "poisson"
tenants = 2
seed = 7
horizon_ns = 1000000

[policy]
kind = "round_robin"
batch_cap = 4
queue_cap = 16
slo_ns = 5000000.0

[fleet]
hosts = [2, 4]
workers = 2
link_latency_ns = 1000.0
link_gbps = 100.0
request_bytes = 4096
rate_rps = 50000.0

[sweep]
shapes = ["2"]
"#;

#[test]
fn the_fleet_fixture_is_actually_valid() {
    let spec = load_str(FLEET_OK).expect("fixture loads");
    let accesys_spec::Scenario::Fleet(sc) = &spec.scenario else {
        panic!("fixture is a fleet scenario, got {}", spec.scenario.kind());
    };
    assert_eq!(sc.hosts, vec![2, 4]);
    assert_eq!(sc.workers, 2);
    assert_eq!(sc.endpoints(4, "2"), 8);
}

#[test]
fn unknown_fleet_key_names_the_key_and_its_line() {
    let text = FLEET_OK.replace("workers = 2", "wrokers = 2");
    let err = expect_diag(
        &text,
        "wrokers",
        Some("fleet.wrokers"),
        "line 33: unknown key `wrokers` in [fleet]",
    );
    assert!(matches!(err, SpecError::UnknownKey { .. }));
}

#[test]
fn fleet_worker_count_over_the_process_cap_is_rejected() {
    let text = FLEET_OK.replace("workers = 2", "workers = 300");
    let err = expect_diag(
        &text,
        "workers = 300",
        Some("fleet.workers"),
        "line 33: `fleet.workers` is 300, over the worker-process cap of 256",
    );
    assert!(matches!(err, SpecError::Invalid { .. }));
}

#[test]
fn zero_fleet_link_latency_is_rejected_as_a_lookahead_violation() {
    // latency_ns doubles as the conservative lookahead of the
    // cross-host cut; zero would make the cut unsound.
    let text = FLEET_OK.replace("link_latency_ns = 1000.0", "link_latency_ns = 0.0");
    expect_diag(
        &text,
        "link_latency_ns = 0.0",
        Some("fleet.link_latency_ns"),
        "line 34: `fleet.link_latency_ns` must be positive \
         (it is the conservative lookahead of the cross-host cut)",
    );
}

#[test]
fn zero_fleet_link_bandwidth_is_rejected() {
    let text = FLEET_OK.replace("link_gbps = 100.0", "link_gbps = 0.0");
    expect_diag(
        &text,
        "link_gbps = 0.0",
        Some("fleet.link_gbps"),
        "line 35: `fleet.link_gbps` must be positive",
    );
}

#[test]
fn zero_host_count_is_rejected() {
    let text = FLEET_OK.replace("hosts = [2, 4]", "hosts = [0, 4]");
    expect_diag(
        &text,
        "hosts = [0, 4]",
        Some("fleet.hosts"),
        "line 32: `fleet.hosts` must be in 1..=4096, got 0",
    );
}

#[test]
fn non_poisson_fleet_traffic_is_rejected() {
    let text = FLEET_OK.replace(
        "process = \"poisson\"",
        "process = \"bursty\"\ncalm_rps = 100.0\nburst_rps = 1000.0\nmean_phase_len = 8",
    );
    expect_diag(
        &text,
        "process = \"bursty\"",
        Some("traffic.process"),
        "line 20: `traffic.process` must be \"poisson\" in fleet scenarios \
         (every host shard regenerates the trace from the seed)",
    );
}
