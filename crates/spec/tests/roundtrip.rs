//! Round-trip tests over the committed `specs/` library: parsing a
//! file and re-serializing the parsed document must reach a fixed
//! point, and the canonical text must resolve to the same scenario as
//! the original. This is the property that makes `Spec::canonical` a
//! faithful archival form — tools may rewrite spec files through the
//! parser without changing their meaning.

use accesys_spec::{load_str, parse};
use std::path::PathBuf;

/// Every committed `specs/*.spec` file, `(file name, text)`.
fn committed_specs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let mut specs: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("specs/ directory at {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "spec"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text =
                std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (name, text)
        })
        .collect();
    specs.sort();
    assert!(
        specs.len() >= 5,
        "the committed library must cover every layer, found {}",
        specs.len()
    );
    specs
}

#[test]
fn canonical_serialization_is_a_fixed_point_for_every_committed_spec() {
    for (name, text) in committed_specs() {
        let doc = parse(&text).unwrap_or_else(|e| panic!("specs/{name}: {e}"));
        let once = doc.to_string();
        let doc2 = parse(&once).unwrap_or_else(|e| panic!("specs/{name} canonical: {e}"));
        let twice = doc2.to_string();
        assert_eq!(
            once, twice,
            "specs/{name}: canonical form is not a fixed point"
        );
    }
}

#[test]
fn canonical_text_resolves_to_the_same_scenario() {
    for (name, text) in committed_specs() {
        let original = load_str(&text).unwrap_or_else(|e| panic!("specs/{name}: {e}"));
        let reloaded =
            load_str(&original.canonical).unwrap_or_else(|e| panic!("specs/{name} canonical: {e}"));
        assert_eq!(
            original.scenario, reloaded.scenario,
            "specs/{name}: canonical text changed the scenario's meaning"
        );
        assert_eq!(
            original.canonical, reloaded.canonical,
            "specs/{name}: canonical of canonical drifted"
        );
    }
}

#[test]
fn the_library_keeps_scenario_names_unique() {
    let mut names = Vec::new();
    for (file, text) in committed_specs() {
        let spec = load_str(&text).unwrap_or_else(|e| panic!("specs/{file}: {e}"));
        let name = spec.scenario.name().to_string();
        assert!(
            !names.contains(&name),
            "specs/{file}: scenario name `{name}` is already taken"
        );
        names.push(name);
    }
}
