//! Stage 1 of the loader: text → [`Document`].
//!
//! The grammar is a deliberately small TOML subset, hand-rolled so the
//! vendored-shim build needs no new dependencies and every diagnostic
//! can carry the offending line:
//!
//! ```text
//! spec    := line*
//! line    := ws (comment | section | entry)? comment? ws
//! section := '[' name ('.' name)* ']'
//! entry   := key '=' value
//! value   := string | bool | int | float | list
//! list    := '[' value (',' value)* ','? ']'        # one line
//! ```
//!
//! Strings are double-quoted (`\"`, `\\`, `\n`, `\t` escapes); ints are
//! decimal or `0x` hex with `_` separators; floats carry a `.` or an
//! exponent; comments run `#` to end of line. Keys live inside a
//! section — a bare entry above the first header is a parse error.
//! Duplicate keys and duplicate section headers are rejected here, with
//! the line of the *second* occurrence.
//!
//! [`Document`] keeps file order and line spans, and its [`Display`]
//! impl emits the **canonical form** (one entry per line, normalized
//! number/string rendering). Canonicalization is a fixed point:
//! `parse(to_string(doc))` re-serializes to the same text — pinned by
//! the round-trip suite in `tests/roundtrip.rs`.
//!
//! [`Display`]: std::fmt::Display

use crate::SpecError;

/// A parsed scenario file: sections in file order, spans attached.
#[derive(Clone, Debug, PartialEq)]
pub struct Document {
    /// The sections, in file order.
    pub sections: Vec<Section>,
}

/// One `[section]` with its entries.
#[derive(Clone, Debug, PartialEq)]
pub struct Section {
    /// Dotted section name (e.g. `topology.compute_bound`).
    pub name: String,
    /// 1-based line of the header.
    pub line: u32,
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

/// One `key = value` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// The key.
    pub key: String,
    /// 1-based line of the entry.
    pub line: u32,
    /// The parsed value.
    pub value: RawValue,
}

/// A parsed value, before schema typing.
#[derive(Clone, Debug, PartialEq)]
pub enum RawValue {
    /// A double-quoted string.
    Str(String),
    /// An integer (decimal or hex in the source).
    Int(i64),
    /// A float (had a `.` or exponent in the source).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line `[ ... ]` list.
    List(Vec<RawValue>),
}

impl RawValue {
    /// Human name of the value's type (for [`SpecError::Type`]).
    pub fn type_name(&self) -> &'static str {
        match self {
            RawValue::Str(_) => "a string",
            RawValue::Int(_) => "an integer",
            RawValue::Float(_) => "a float",
            RawValue::Bool(_) => "a boolean",
            RawValue::List(_) => "a list",
        }
    }
}

impl Document {
    /// Find a section by (dotted) name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

impl Section {
    /// Find an entry by key.
    pub fn entry(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// Parse a scenario file into its [`Document`].
///
/// # Errors
///
/// [`SpecError::Parse`] for malformed text, [`SpecError::DuplicateKey`]
/// / [`SpecError::DuplicateSection`] for repeats — all carrying the
/// offending line. Never panics, whatever the input.
pub fn parse(text: &str) -> Result<Document, SpecError> {
    let mut doc = Document {
        sections: Vec::new(),
    };
    for (idx, raw_line) in text.lines().enumerate() {
        let line = (idx + 1) as u32;
        let trimmed = strip_comment(raw_line).trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or_else(|| SpecError::Parse {
                line,
                message: "section header does not end with `]`".to_string(),
            })?;
            let name = name.trim();
            if name.is_empty() || !name.split('.').all(is_name) {
                return Err(SpecError::Parse {
                    line,
                    message: format!("malformed section name `[{name}]`"),
                });
            }
            if doc.section(name).is_some() {
                return Err(SpecError::DuplicateSection {
                    line,
                    section: name.to_string(),
                });
            }
            doc.sections.push(Section {
                name: name.to_string(),
                line,
                entries: Vec::new(),
            });
            continue;
        }
        let (key, value_text) = trimmed.split_once('=').ok_or_else(|| SpecError::Parse {
            line,
            message: format!("expected `key = value` or `[section]`, got `{trimmed}`"),
        })?;
        let key = key.trim();
        if !is_name(key) {
            return Err(SpecError::Parse {
                line,
                message: format!("malformed key `{key}`"),
            });
        }
        let section = doc.sections.last_mut().ok_or_else(|| SpecError::Parse {
            line,
            message: format!("key `{key}` appears before any [section] header"),
        })?;
        if section.entry(key).is_some() {
            return Err(SpecError::DuplicateKey {
                line,
                field: format!("{}.{}", section.name, key),
            });
        }
        let value = parse_value(value_text.trim(), line)?;
        section.entries.push(Entry {
            key: key.to_string(),
            line,
            value,
        });
    }
    Ok(doc)
}

/// Strip a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn is_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str, line: u32) -> Result<RawValue, SpecError> {
    let (value, rest) = parse_value_prefix(text, line)?;
    if !rest.trim().is_empty() {
        return Err(SpecError::Parse {
            line,
            message: format!("trailing text `{}` after value", rest.trim()),
        });
    }
    Ok(value)
}

/// Parse one value off the front of `text`; return it and the rest.
fn parse_value_prefix(text: &str, line: u32) -> Result<(RawValue, &str), SpecError> {
    let text = text.trim_start();
    if let Some(rest) = text.strip_prefix('"') {
        return parse_string(rest, line);
    }
    if let Some(mut rest) = text.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((RawValue::List(items), after));
            }
            if rest.is_empty() {
                return Err(SpecError::Parse {
                    line,
                    message: "unterminated list (lists are single-line)".to_string(),
                });
            }
            let (item, after) = parse_value_prefix(rest, line)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err(SpecError::Parse {
                    line,
                    message: "expected `,` or `]` in list".to_string(),
                });
            }
        }
    }
    // Bare token: bool or number, up to a delimiter.
    let end = text
        .find(|c: char| c == ',' || c == ']' || c.is_whitespace())
        .unwrap_or(text.len());
    let (token, rest) = text.split_at(end);
    match token {
        "true" => return Ok((RawValue::Bool(true), rest)),
        "false" => return Ok((RawValue::Bool(false), rest)),
        "" => {
            return Err(SpecError::Parse {
                line,
                message: "expected a value".to_string(),
            })
        }
        _ => {}
    }
    Ok((parse_number(token, line)?, rest))
}

fn parse_string(rest: &str, line: u32) -> Result<(RawValue, &str), SpecError> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((RawValue::Str(out), &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                other => {
                    return Err(SpecError::Parse {
                        line,
                        message: format!(
                            "unknown string escape `\\{}`",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ),
                    })
                }
            },
            _ => out.push(c),
        }
    }
    Err(SpecError::Parse {
        line,
        message: "unterminated string".to_string(),
    })
}

fn parse_number(token: &str, line: u32) -> Result<RawValue, SpecError> {
    let clean: String = token.chars().filter(|&c| c != '_').collect();
    let (neg, body) = match clean.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, clean.as_str()),
    };
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        let mag = i64::from_str_radix(hex, 16).map_err(|_| SpecError::Parse {
            line,
            message: format!("malformed hex integer `{token}`"),
        })?;
        return Ok(RawValue::Int(if neg { -mag } else { mag }));
    }
    if body.contains(['.', 'e', 'E']) {
        let v: f64 = clean.parse().map_err(|_| SpecError::Parse {
            line,
            message: format!("malformed number `{token}`"),
        })?;
        if !v.is_finite() {
            return Err(SpecError::Parse {
                line,
                message: format!("non-finite number `{token}`"),
            });
        }
        return Ok(RawValue::Float(v));
    }
    let v: i64 = clean.parse().map_err(|_| SpecError::Parse {
        line,
        message: format!("malformed value `{token}` (strings are double-quoted)"),
    })?;
    Ok(RawValue::Int(v))
}

// ---------------------------------------------------------------------
// Canonical serialization.

impl std::fmt::Display for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "[{}]", section.name)?;
            for entry in &section.entries {
                writeln!(f, "{} = {}", entry.key, entry.value)?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for RawValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RawValue::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        _ => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            RawValue::Int(v) => write!(f, "{v}"),
            // `{:?}` is the shortest representation that re-parses to
            // the same f64 and always keeps a `.` or exponent, so the
            // canonical form stays a Float.
            RawValue::Float(v) => write!(f, "{v:?}"),
            RawValue::Bool(b) => write!(f, "{b}"),
            RawValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_entries_and_values() {
        let doc = parse(
            "# demo\n[scenario]\nname = \"fig2\"  # trailing comment\n\n[sweep]\n\
             compute_ns = [100.0, 2_000.0]\nseed = 0xACCE5\nflag = true\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        let sweep = doc.section("sweep").unwrap();
        assert_eq!(
            sweep.entry("compute_ns").unwrap().value,
            RawValue::List(vec![RawValue::Float(100.0), RawValue::Float(2000.0)])
        );
        assert_eq!(sweep.entry("seed").unwrap().value, RawValue::Int(0xACCE5));
        assert_eq!(sweep.entry("flag").unwrap().value, RawValue::Bool(true));
        assert_eq!(sweep.entry("seed").unwrap().line, 7);
    }

    #[test]
    fn duplicate_key_and_section_carry_the_second_line() {
        let err = parse("[a]\nx = 1\nx = 2\n").unwrap_err();
        assert_eq!(
            err,
            SpecError::DuplicateKey {
                line: 3,
                field: "a.x".to_string()
            }
        );
        let err = parse("[a]\n[b]\n[a]\n").unwrap_err();
        assert_eq!(
            err,
            SpecError::DuplicateSection {
                line: 3,
                section: "a".to_string()
            }
        );
    }

    #[test]
    fn entry_before_any_section_is_a_parse_error() {
        assert!(matches!(
            parse("x = 1\n").unwrap_err(),
            SpecError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn canonical_form_is_a_fixed_point() {
        let text = "[s]\na = 0x10 # hex normalizes\nb = [1, 2.5, \"x\"]\nc = \"q\\\"uote\"\n";
        let once = parse(text).unwrap().to_string();
        let twice = parse(&once).unwrap().to_string();
        assert_eq!(once, twice);
        assert!(once.contains("a = 16"));
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        for bad in [
            "[a",
            "[a]\nx 1",
            "[a]\nx = ",
            "[a]\nx = \"open",
            "[a]\nx = [1,",
            "[a]\nx = 1 2",
            "[a]\nx = nope",
            "[a]\nx = 0xZZ",
            "[]\n",
            "[a]\n1x = 3",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must fail typed");
        }
    }
}
