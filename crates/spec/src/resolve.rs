//! Stages 2–3 of the loader: [`Document`] → typed [`Spec`](crate::Spec).
//!
//! **Resolve** walks the parsed document against the per-kind schema:
//! every section and key must be known ([`SpecError::UnknownSection`] /
//! [`SpecError::UnknownKey`]), required ones present
//! ([`SpecError::MissingSection`] / [`SpecError::MissingKey`]), and
//! every value of the right type ([`SpecError::Type`]; integers
//! coerce to floats, nothing else does). **Validate** then applies the
//! semantic rules that need cross-field knowledge — tree shapes parse
//! and fit the address map, pipeline `devices` stay inside the
//! smallest swept topology ([`SpecError::DanglingDevice`]), swept
//! names are unique ([`SpecError::DuplicateName`]), KV budgets hold at
//! least one request and fit the engine cap ([`SpecError::KvBudget`]).
//! Both stages work off the entry spans the parser kept, so every
//! error points at its line.

use crate::parse::{Document, Entry, RawValue, Section};
use crate::scenario::{
    mem_tech, parse_shape, BatchCap, DecodeScenario, EncoderDims, FleetScenario, KvSpec,
    PipelineScenario, PolicyKind, PolicySpec, RooflineScenario, ScalePair, Scenario,
    ServingScenario, SystemSpec, TopoScenario, TrafficProcess, TrafficSpec, MEM_TECH_NAMES,
};
use crate::SpecError;
use accesys::addrmap::MAX_ACCELS;
use accesys_serve::llm::KV_BUDGET_MAX;
use accesys_serve::{Arrival, LlmRequestShape, RequestShape};
use accesys_workload::llm::LlmSpec;

/// Resolve and validate a parsed document into a [`Scenario`].
pub fn resolve(doc: &Document) -> Result<Scenario, SpecError> {
    let scenario = need_section(doc, "scenario")?;
    known_keys(scenario, &["kind", "name"])?;
    let (kind, kind_line) = need_str(scenario, "kind")?;
    let (name, name_line) = need_str(scenario, "name")?;
    if name.is_empty() {
        return Err(invalid(name_line, "scenario.name", "must not be empty"));
    }
    let name = name.to_string();
    match kind {
        "roofline" => resolve_roofline(doc, name),
        "topo" => resolve_topo(doc, name),
        "pipeline" => resolve_pipeline(doc, name),
        "serving" => resolve_serving(doc, name),
        "decode" => resolve_decode(doc, name),
        "fleet" => resolve_fleet(doc, name),
        other => Err(invalid(
            kind_line,
            "scenario.kind",
            &format!(
                "has unknown scenario kind `{other}` \
                 (expected roofline|topo|pipeline|serving|decode|fleet)"
            ),
        )),
    }
}

// ---------------------------------------------------------------------
// Per-kind resolvers.

fn resolve_roofline(doc: &Document, name: String) -> Result<Scenario, SpecError> {
    known_sections(
        doc,
        &["scenario", "topology", "workload", "sweep", "kernel"],
    )?;
    let mut system = resolve_system(doc, "topology", false)?;
    system.kernel_threads = resolve_kernel(doc)?;
    let workload = need_section(doc, "workload")?;
    known_keys(workload, &["kind", "matrix", "matrix_full"])?;
    need_workload_kind(workload, "gemm")?;
    let (matrix, _) = pair_u32(workload, "matrix")?;
    let sweep = need_section(doc, "sweep")?;
    known_keys(sweep, &["compute_ns"])?;
    let (compute_ns, line) = need_f64_list(sweep, "compute_ns")?;
    if compute_ns.is_empty() {
        return Err(invalid(line, "sweep.compute_ns", "must not be empty"));
    }
    if let Some(&bad) = compute_ns.iter().find(|&&c| c <= 0.0) {
        return Err(invalid(
            line,
            "sweep.compute_ns",
            &format!("must be positive, got {bad}"),
        ));
    }
    Ok(Scenario::Roofline(RooflineScenario {
        name,
        system,
        matrix,
        compute_ns,
    }))
}

fn resolve_topo(doc: &Document, name: String) -> Result<Scenario, SpecError> {
    known_sections(
        doc,
        &[
            "scenario",
            "topology",
            "topology.compute_bound",
            "topology.transfer_bound",
            "workload",
            "sweep",
            "kernel",
        ],
    )?;
    let kernel_threads = resolve_kernel(doc)?;
    let base = partial_system(doc, "topology", true)?;
    let mut compute_bound = finish_system(
        merge_system(&base, &partial_system(doc, "topology.compute_bound", true)?),
        "topology.compute_bound",
    )?;
    let mut transfer_bound = finish_system(
        merge_system(
            &base,
            &partial_system(doc, "topology.transfer_bound", true)?,
        ),
        "topology.transfer_bound",
    )?;
    compute_bound.kernel_threads = kernel_threads;
    transfer_bound.kernel_threads = kernel_threads;
    let workload = need_section(doc, "workload")?;
    known_keys(workload, &["kind", "matrix", "matrix_full"])?;
    need_workload_kind(workload, "gemm_sharded")?;
    let (matrix, _) = pair_u32(workload, "matrix")?;
    let sweep = need_section(doc, "sweep")?;
    known_keys(sweep, &["shapes"])?;
    let shapes = resolve_shapes(sweep)?;
    for sys in [&compute_bound, &transfer_bound] {
        check_leaves(sys, &shapes, doc)?;
    }
    Ok(Scenario::Topo(TopoScenario {
        name,
        compute_bound,
        transfer_bound,
        matrix,
        shapes,
    }))
}

fn resolve_pipeline(doc: &Document, name: String) -> Result<Scenario, SpecError> {
    known_sections(
        doc,
        &["scenario", "topology", "workload", "sweep", "kernel"],
    )?;
    let mut system = resolve_system(doc, "topology", true)?;
    system.kernel_threads = resolve_kernel(doc)?;
    let workload = need_section(doc, "workload")?;
    known_keys(
        workload,
        &[
            "kind",
            "seq",
            "seq_full",
            "hidden",
            "hidden_full",
            "heads",
            "heads_full",
            "mlp",
            "mlp_full",
            "layers",
            "layers_full",
            "images",
            "images_full",
            "devices",
        ],
    )?;
    need_workload_kind(workload, "encoder_pipeline")?;
    let (seq, _) = pair_u32(workload, "seq")?;
    let (hidden, _) = pair_u32(workload, "hidden")?;
    let (heads, _) = pair_u32(workload, "heads")?;
    let (mlp, _) = pair_u32(workload, "mlp")?;
    let dims = ScalePair {
        quick: EncoderDims {
            seq: seq.quick,
            hidden: hidden.quick,
            heads: heads.quick,
            mlp: mlp.quick,
        },
        full: EncoderDims {
            seq: seq.full,
            hidden: hidden.full,
            heads: heads.full,
            mlp: mlp.full,
        },
    };
    let (layers, _) = pair_u32(workload, "layers")?;
    let (images, _) = pair_u32(workload, "images")?;
    let devices = match want_entry(workload, "devices") {
        Some(entry) => {
            let (list, line) = as_u32_list(entry, "workload")?;
            if list.is_empty() {
                return Err(invalid(line, "workload.devices", "must not be empty"));
            }
            Some((
                list.into_iter().map(|d| d as usize).collect::<Vec<_>>(),
                line,
            ))
        }
        None => None,
    };
    let sweep = need_section(doc, "sweep")?;
    known_keys(sweep, &["shapes"])?;
    let shapes = resolve_shapes(sweep)?;
    check_leaves(&system, &shapes, doc)?;
    // A pinned device list must exist on *every* swept topology.
    let devices = match devices {
        Some((list, line)) => {
            let min_endpoints = shapes
                .iter()
                .filter_map(|s| parse_shape(s))
                .map(|l| l.iter().product::<u32>() as usize)
                .min()
                .unwrap_or(0);
            if let Some(&bad) = list.iter().find(|&&d| d >= min_endpoints) {
                return Err(SpecError::DanglingDevice {
                    line,
                    field: "workload.devices".to_string(),
                    reference: format!("dev{bad}"),
                    endpoints: min_endpoints,
                });
            }
            Some(list)
        }
        None => None,
    };
    Ok(Scenario::Pipeline(PipelineScenario {
        name,
        system,
        dims,
        layers,
        images,
        devices,
        shapes,
    }))
}

fn resolve_serving(doc: &Document, name: String) -> Result<Scenario, SpecError> {
    known_sections(
        doc,
        &[
            "scenario", "topology", "workload", "traffic", "policy", "sweep", "kernel",
        ],
    )?;
    let mut system = resolve_system(doc, "topology", true)?;
    system.kernel_threads = resolve_kernel(doc)?;
    let workload = need_section(doc, "workload")?;
    known_keys(
        workload,
        &["kind", "seq", "hidden", "heads", "mlp", "slices"],
    )?;
    need_workload_kind(workload, "encoder_request")?;
    let request = RequestShape {
        seq: need_u32(workload, "seq")?.0,
        hidden: need_u32(workload, "hidden")?.0,
        heads: need_u32(workload, "heads")?.0,
        mlp: need_u32(workload, "mlp")?.0,
        slices: need_u32(workload, "slices")?.0,
    };
    let traffic = resolve_traffic(doc)?;
    let policy = resolve_policy(doc, traffic.tenants())?;
    let sweep = need_section(doc, "sweep")?;
    known_keys(sweep, &["shapes", "rates"])?;
    let shapes = resolve_shapes(sweep)?;
    check_leaves(&system, &shapes, doc)?;
    let rates = resolve_rates(sweep)?;
    Ok(Scenario::Serving(ServingScenario {
        name,
        system,
        request,
        traffic,
        policy,
        shapes,
        rates,
    }))
}

fn resolve_decode(doc: &Document, name: String) -> Result<Scenario, SpecError> {
    known_sections(
        doc,
        &[
            "scenario", "topology", "workload", "traffic", "policy", "kv", "sweep", "kernel",
        ],
    )?;
    let mut system = resolve_system(doc, "topology", true)?;
    system.kernel_threads = resolve_kernel(doc)?;
    let workload = need_section(doc, "workload")?;
    known_keys(
        workload,
        &[
            "kind", "hidden", "heads", "mlp", "layers", "prompt", "decode",
        ],
    )?;
    need_workload_kind(workload, "llm")?;
    let request = LlmRequestShape {
        spec: LlmSpec {
            hidden: need_u32(workload, "hidden")?.0,
            heads: need_u32(workload, "heads")?.0,
            mlp: need_u32(workload, "mlp")?.0,
            layers: need_u32(workload, "layers")?.0,
        },
        prompt: need_u32(workload, "prompt")?.0,
        decode: need_u32(workload, "decode")?.0,
    };
    let traffic = resolve_traffic(doc)?;
    let policy = resolve_policy(doc, traffic.tenants())?;
    let kv_section = need_section(doc, "kv")?;
    known_keys(kv_section, &["ample_bytes", "tight_pct"])?;
    let (ample_bytes, ample_line) = need_u64(kv_section, "ample_bytes")?;
    let (tight_pct, tight_line) = need_u32(kv_section, "tight_pct")?;
    let kv = KvSpec {
        ample_bytes,
        tight_pct,
    };
    let sweep = need_section(doc, "sweep")?;
    known_keys(sweep, &["shapes", "rates", "budgets"])?;
    let shapes = resolve_shapes(sweep)?;
    check_leaves(&system, &shapes, doc)?;
    let rates = resolve_rates(sweep)?;
    let budgets = resolve_budgets(sweep)?;
    // Every swept regime must hold one request and fit the engine cap.
    let need = request.max_kv_bytes();
    for budget in &budgets {
        let (bytes, line, field) = match budget.as_str() {
            "ample" => (ample_bytes, ample_line, "kv.ample_bytes"),
            _ => (
                need * u64::from(tight_pct) / 100,
                tight_line,
                "kv.tight_pct",
            ),
        };
        if bytes < need {
            return Err(SpecError::KvBudget {
                line,
                field: field.to_string(),
                message: format!(
                    "holds {bytes} bytes, but one request needs {need} bytes of KV cache"
                ),
            });
        }
        if bytes > KV_BUDGET_MAX {
            return Err(SpecError::KvBudget {
                line,
                field: field.to_string(),
                message: format!(
                    "holds {bytes} bytes, over the engine cap of {KV_BUDGET_MAX} bytes"
                ),
            });
        }
    }
    Ok(Scenario::Decode(DecodeScenario {
        name,
        system,
        request,
        traffic,
        policy,
        kv,
        shapes,
        rates,
        budgets,
    }))
}

/// Upper bound on `[fleet] hosts` entries the validator accepts
/// (mirrors the fleet crate's own spec cap).
const MAX_FLEET_HOSTS: u32 = 4096;

/// Upper bound on `[fleet] workers`; one OS process per worker, so a
/// larger value is a typo, not a bigger machine.
const MAX_FLEET_WORKERS: u32 = 256;

fn resolve_fleet(doc: &Document, name: String) -> Result<Scenario, SpecError> {
    known_sections(
        doc,
        &[
            "scenario", "topology", "workload", "traffic", "policy", "fleet", "sweep", "kernel",
        ],
    )?;
    let mut system = resolve_system(doc, "topology", true)?;
    system.kernel_threads = resolve_kernel(doc)?;
    // Hosts are identical by construction; a per-leaf list has no
    // meaning when the same tree is stamped out `hosts` times.
    if system.leaves.is_some() {
        let line = need_section(doc, "topology")?
            .entry("leaves")
            .map_or(0, |e| e.line);
        return Err(invalid(
            line,
            "topology.leaves",
            "is not supported in fleet scenarios (hosts are identical; use devmem)",
        ));
    }
    let workload = need_section(doc, "workload")?;
    known_keys(
        workload,
        &["kind", "seq", "hidden", "heads", "mlp", "slices"],
    )?;
    need_workload_kind(workload, "encoder_request")?;
    let request = RequestShape {
        seq: need_u32(workload, "seq")?.0,
        hidden: need_u32(workload, "hidden")?.0,
        heads: need_u32(workload, "heads")?.0,
        mlp: need_u32(workload, "mlp")?.0,
        slices: need_u32(workload, "slices")?.0,
    };
    let traffic = resolve_traffic(doc)?;
    // Every shard regenerates the fleet trace independently from the
    // seed, so the process must be precomputable — poisson only.
    if !matches!(traffic.process, TrafficProcess::Poisson { .. }) {
        let line = need_section(doc, "traffic")?
            .entry("process")
            .map_or(0, |e| e.line);
        return Err(invalid(
            line,
            "traffic.process",
            "must be \"poisson\" in fleet scenarios (every host shard \
             regenerates the trace from the seed)",
        ));
    }
    let policy = resolve_policy(doc, traffic.tenants())?;
    let fleet = need_section(doc, "fleet")?;
    known_keys(
        fleet,
        &[
            "hosts",
            "workers",
            "link_latency_ns",
            "link_gbps",
            "request_bytes",
            "rate_rps",
        ],
    )?;
    let (hosts, hosts_line) = need_u32_list(fleet, "hosts")?;
    if hosts.is_empty() {
        return Err(invalid(hosts_line, "fleet.hosts", "must not be empty"));
    }
    for (i, &h) in hosts.iter().enumerate() {
        if h == 0 || h > MAX_FLEET_HOSTS {
            return Err(invalid(
                hosts_line,
                "fleet.hosts",
                &format!("must be in 1..={MAX_FLEET_HOSTS}, got {h}"),
            ));
        }
        if hosts[..i].contains(&h) {
            return Err(SpecError::DuplicateName {
                line: hosts_line,
                field: "fleet.hosts".to_string(),
                name: h.to_string(),
            });
        }
    }
    let workers = match want_u32(fleet, "workers")? {
        None => 0,
        Some((w, line)) => {
            if w > MAX_FLEET_WORKERS {
                return Err(invalid(
                    line,
                    "fleet.workers",
                    &format!("is {w}, over the worker-process cap of {MAX_FLEET_WORKERS}"),
                ));
            }
            w
        }
    };
    let (link_latency_ns, latency_line) = need_f64(fleet, "link_latency_ns")?;
    if !(link_latency_ns > 0.0 && link_latency_ns.is_finite()) {
        return Err(invalid(
            latency_line,
            "fleet.link_latency_ns",
            "must be positive (it is the conservative lookahead of the cross-host cut)",
        ));
    }
    let (link_gbps, gbps_line) = need_f64(fleet, "link_gbps")?;
    if !(link_gbps > 0.0 && link_gbps.is_finite()) {
        return Err(invalid(gbps_line, "fleet.link_gbps", "must be positive"));
    }
    let (request_bytes, bytes_line) = need_u64(fleet, "request_bytes")?;
    if request_bytes == 0 {
        return Err(invalid(
            bytes_line,
            "fleet.request_bytes",
            "must be at least 1 (a request still occupies the wire)",
        ));
    }
    let (rate_rps, rate_line) = need_f64(fleet, "rate_rps")?;
    if !(rate_rps >= 0.0 && rate_rps.is_finite()) {
        return Err(invalid(rate_line, "fleet.rate_rps", "must be non-negative"));
    }
    let sweep = need_section(doc, "sweep")?;
    known_keys(sweep, &["shapes"])?;
    let shapes = resolve_shapes(sweep)?;
    Ok(Scenario::Fleet(FleetScenario {
        name,
        system,
        request,
        traffic,
        policy,
        hosts,
        workers,
        link_latency_ns,
        link_gbps,
        request_bytes,
        rate_rps,
        shapes,
    }))
}

// ---------------------------------------------------------------------
// Section schemas.

/// The keys a `[topology]`-family section may carry.
const TOPOLOGY_KEYS: &[&str] = &[
    "link_gbps",
    "host_mem",
    "compute_ns",
    "smmu",
    "devmem",
    "leaves",
];

#[derive(Clone, Default)]
struct PartialSystem {
    link_gbps: Option<f64>,
    host_mem: Option<accesys_mem::MemTech>,
    compute_ns: Option<f64>,
    smmu: Option<bool>,
    devmem: Option<Option<accesys_mem::MemTech>>,
    leaves: Option<(Vec<Option<accesys_mem::MemTech>>, u32)>,
}

fn resolve_system(doc: &Document, name: &str, tree: bool) -> Result<SystemSpec, SpecError> {
    if doc.section(name).is_none() {
        return Err(SpecError::MissingSection {
            section: name.to_string(),
        });
    }
    finish_system(partial_system(doc, name, tree)?, name)
}

fn partial_system(doc: &Document, name: &str, tree: bool) -> Result<PartialSystem, SpecError> {
    let Some(section) = doc.section(name) else {
        return Ok(PartialSystem::default());
    };
    // Roofline testbeds have no tree, so per-leaf keys are unknown.
    let allowed: &[&str] = if tree {
        TOPOLOGY_KEYS
    } else {
        &["link_gbps", "host_mem", "compute_ns", "smmu"]
    };
    known_keys(section, allowed)?;
    let mut p = PartialSystem {
        link_gbps: want_f64(section, "link_gbps")?.map(|(v, _)| v),
        compute_ns: want_f64(section, "compute_ns")?.map(|(v, _)| v),
        smmu: want_bool(section, "smmu")?.map(|(v, _)| v),
        ..PartialSystem::default()
    };
    if let Some((s, line)) = want_str(section, "host_mem")? {
        p.host_mem = Some(need_mem_tech(s, line, &field(&section.name, "host_mem"))?);
    }
    if let Some((s, line)) = want_str(section, "devmem")? {
        p.devmem = Some(opt_mem_tech(s, line, &field(&section.name, "devmem"))?);
    }
    if let Some(entry) = want_entry(section, "leaves") {
        let (names, line) = as_str_list(entry, &section.name)?;
        let mut leaves = Vec::new();
        for n in names {
            leaves.push(opt_mem_tech(&n, line, &field(&section.name, "leaves"))?);
        }
        p.leaves = Some((leaves, line));
    }
    Ok(p)
}

fn merge_system(base: &PartialSystem, over: &PartialSystem) -> PartialSystem {
    PartialSystem {
        link_gbps: over.link_gbps.or(base.link_gbps),
        host_mem: over.host_mem.or(base.host_mem),
        compute_ns: over.compute_ns.or(base.compute_ns),
        smmu: over.smmu.or(base.smmu),
        devmem: over.devmem.or(base.devmem),
        leaves: over.leaves.clone().or_else(|| base.leaves.clone()),
    }
}

fn finish_system(p: PartialSystem, section: &str) -> Result<SystemSpec, SpecError> {
    let missing = |key: &str| SpecError::MissingKey {
        section: section.to_string(),
        key: key.to_string(),
    };
    Ok(SystemSpec {
        link_gbps: p.link_gbps.ok_or_else(|| missing("link_gbps"))?,
        host_mem: p.host_mem.ok_or_else(|| missing("host_mem"))?,
        compute_ns: p.compute_ns,
        smmu: p.smmu.unwrap_or(true),
        devmem: p.devmem.flatten(),
        leaves: p.leaves.map(|(l, _)| l),
        kernel_threads: None,
    })
}

/// Upper bound on `[kernel] threads` the validator accepts; far above
/// any domain count a valid topology can produce (the address map caps
/// endpoints at [`MAX_ACCELS`]), so a larger value is a typo.
const MAX_KERNEL_THREADS: u32 = 512;

/// The optional `[kernel]` section: execution knobs. `threads` picks
/// the parallel domain engine's worker count (1 = sequential); it
/// never changes observable results, only wall-clock.
fn resolve_kernel(doc: &Document) -> Result<Option<u32>, SpecError> {
    let Some(section) = doc.section("kernel") else {
        return Ok(None);
    };
    known_keys(section, &["threads"])?;
    let (threads, line) = need_u32(section, "threads")?;
    if threads == 0 {
        return Err(invalid(
            line,
            "kernel.threads",
            "must be positive (1 = sequential)",
        ));
    }
    if threads > MAX_KERNEL_THREADS {
        return Err(invalid(
            line,
            "kernel.threads",
            &format!("is {threads}, over the engine cap of {MAX_KERNEL_THREADS} threads"),
        ));
    }
    Ok(Some(threads))
}

/// An explicit `leaves` list must match every swept shape's endpoint
/// count — otherwise some listed leaf does not exist (or some endpoint
/// has no entry).
fn check_leaves(sys: &SystemSpec, shapes: &[String], doc: &Document) -> Result<(), SpecError> {
    let Some(leaves) = &sys.leaves else {
        return Ok(());
    };
    // Find the declaring entry's span (whichever topology section).
    let line = doc
        .sections
        .iter()
        .filter(|s| s.name.starts_with("topology"))
        .filter_map(|s| s.entry("leaves"))
        .map(|e| e.line)
        .next()
        .unwrap_or(0);
    for shape in shapes {
        let endpoints: u32 = parse_shape(shape).map_or(0, |l| l.iter().product());
        if endpoints as usize != leaves.len() {
            return Err(invalid(
                line,
                "topology.leaves",
                &format!(
                    "lists {} leaf device memories, but shape \"{shape}\" has \
                     {endpoints} endpoint(s)",
                    leaves.len()
                ),
            ));
        }
    }
    Ok(())
}

fn resolve_traffic(doc: &Document) -> Result<TrafficSpec, SpecError> {
    let section = need_section(doc, "traffic")?;
    let (process, process_line) = need_str(section, "process")?;
    let common = ["process", "horizon_ns", "horizon_ns_full"];
    let process = match process {
        "poisson" => {
            known_keys(section, &[&common[..], &["tenants", "seed"]].concat())?;
            TrafficProcess::Poisson {
                tenants: need_tenants(section)?,
                seed: need_u64(section, "seed")?.0,
            }
        }
        "bursty" => {
            known_keys(
                section,
                &[
                    &common[..],
                    &["tenants", "seed", "calm_rps", "burst_rps", "mean_phase_len"],
                ]
                .concat(),
            )?;
            TrafficProcess::Bursty {
                calm_rps: need_f64(section, "calm_rps")?.0,
                burst_rps: need_f64(section, "burst_rps")?.0,
                mean_phase_len: need_u32(section, "mean_phase_len")?.0,
                tenants: need_tenants(section)?,
                seed: need_u64(section, "seed")?.0,
            }
        }
        "trace" => {
            known_keys(section, &[&common[..], &["at_ns", "tenant"]].concat())?;
            let (at_ns, at_line) = need_u64_list(section, "at_ns")?;
            let (tenant, tenant_line) = need_u32_list(section, "tenant")?;
            if at_ns.is_empty() {
                return Err(invalid(at_line, "traffic.at_ns", "must not be empty"));
            }
            if at_ns.windows(2).any(|w| w[0] > w[1]) {
                return Err(invalid(
                    at_line,
                    "traffic.at_ns",
                    "must be sorted by arrival time",
                ));
            }
            if tenant.len() != at_ns.len() {
                return Err(invalid(
                    tenant_line,
                    "traffic.tenant",
                    &format!(
                        "lists {} tenant(s) for {} arrival time(s)",
                        tenant.len(),
                        at_ns.len()
                    ),
                ));
            }
            TrafficProcess::Trace(
                at_ns
                    .into_iter()
                    .zip(tenant)
                    .map(|(at_ns, tenant)| Arrival { at_ns, tenant })
                    .collect(),
            )
        }
        other => {
            return Err(invalid(
                process_line,
                "traffic.process",
                &format!("has unknown arrival process `{other}` (expected poisson|bursty|trace)"),
            ))
        }
    };
    let (horizon_ns, line) = pair_u64(section, "horizon_ns")?;
    if horizon_ns.quick == 0 || horizon_ns.full == 0 {
        return Err(invalid(line, "traffic.horizon_ns", "must be positive"));
    }
    Ok(TrafficSpec {
        horizon_ns,
        process,
    })
}

fn need_tenants(section: &Section) -> Result<u32, SpecError> {
    let (tenants, line) = need_u32(section, "tenants")?;
    if tenants == 0 {
        return Err(invalid(line, "traffic.tenants", "must be at least 1"));
    }
    Ok(tenants)
}

fn resolve_policy(doc: &Document, tenants: u32) -> Result<PolicySpec, SpecError> {
    let section = need_section(doc, "policy")?;
    known_keys(
        section,
        &["kind", "weights", "batch_cap", "queue_cap", "slo_ns"],
    )?;
    let (kind_name, kind_line) = need_str(section, "kind")?;
    let weights = want_entry(section, "weights");
    let kind = match kind_name {
        "fifo" | "round_robin" => {
            if let Some(entry) = weights {
                return Err(invalid(
                    entry.line,
                    "policy.weights",
                    &format!("is only valid with kind \"weighted_share\", not \"{kind_name}\""),
                ));
            }
            if kind_name == "fifo" {
                PolicyKind::Fifo
            } else {
                PolicyKind::RoundRobin
            }
        }
        "weighted_share" => {
            let (weights, line) = need_u32_list(section, "weights")?;
            if weights.len() != tenants as usize {
                return Err(invalid(
                    line,
                    "policy.weights",
                    &format!("lists {} weight(s) for {tenants} tenant(s)", weights.len()),
                ));
            }
            PolicyKind::WeightedShare(weights)
        }
        other => {
            return Err(invalid(
                kind_line,
                "policy.kind",
                &format!(
                    "has unknown policy kind `{other}` (expected fifo|round_robin|weighted_share)"
                ),
            ))
        }
    };
    let batch_entry = need_entry(section, "batch_cap")?;
    let batch_cap = match &batch_entry.value {
        RawValue::Str(s) if s == "auto" => BatchCap::Auto(2),
        RawValue::Int(n) if *n > 0 => BatchCap::Fixed(*n as usize),
        RawValue::Int(_) => {
            return Err(invalid(
                batch_entry.line,
                "policy.batch_cap",
                "must be positive",
            ))
        }
        other => {
            return Err(SpecError::Type {
                line: batch_entry.line,
                field: "policy.batch_cap".to_string(),
                expected: "\"auto\" or a positive integer",
                found: other.type_name().to_string(),
            })
        }
    };
    let (queue_cap, queue_line) = need_u32(section, "queue_cap")?;
    if queue_cap == 0 {
        return Err(invalid(queue_line, "policy.queue_cap", "must be positive"));
    }
    let (slo_ns, slo_line) = need_f64(section, "slo_ns")?;
    if slo_ns <= 0.0 {
        return Err(invalid(slo_line, "policy.slo_ns", "must be positive"));
    }
    Ok(PolicySpec {
        kind,
        batch_cap,
        queue_cap: queue_cap as usize,
        slo_ns,
    })
}

fn resolve_shapes(sweep: &Section) -> Result<Vec<String>, SpecError> {
    let (shapes, line) = need_str_list(sweep, "shapes")?;
    if shapes.is_empty() {
        return Err(invalid(line, "sweep.shapes", "must not be empty"));
    }
    for (i, shape) in shapes.iter().enumerate() {
        let Some(levels) = parse_shape(shape) else {
            return Err(invalid(
                line,
                "sweep.shapes",
                &format!("has malformed tree shape \"{shape}\" (want x-separated fan-outs)"),
            ));
        };
        let endpoints: u32 = levels.iter().product();
        if endpoints as usize > MAX_ACCELS {
            return Err(invalid(
                line,
                "sweep.shapes",
                &format!(
                    "shape \"{shape}\" has {endpoints} endpoints, over the address-map \
                     cap of {MAX_ACCELS}"
                ),
            ));
        }
        if shapes[..i].contains(shape) {
            return Err(SpecError::DuplicateName {
                line,
                field: "sweep.shapes".to_string(),
                name: shape.clone(),
            });
        }
    }
    Ok(shapes)
}

fn resolve_rates(sweep: &Section) -> Result<Vec<f64>, SpecError> {
    let (rates, line) = need_f64_list(sweep, "rates")?;
    if rates.is_empty() {
        return Err(invalid(line, "sweep.rates", "must not be empty"));
    }
    if let Some(&bad) = rates.iter().find(|&&r| r < 0.0) {
        return Err(invalid(
            line,
            "sweep.rates",
            &format!("must be non-negative, got {bad}"),
        ));
    }
    Ok(rates)
}

fn resolve_budgets(sweep: &Section) -> Result<Vec<String>, SpecError> {
    let (budgets, line) = need_str_list(sweep, "budgets")?;
    if budgets.is_empty() {
        return Err(invalid(line, "sweep.budgets", "must not be empty"));
    }
    for (i, budget) in budgets.iter().enumerate() {
        if budget != "ample" && budget != "tight" {
            return Err(invalid(
                line,
                "sweep.budgets",
                &format!("has unknown KV budget regime \"{budget}\" (expected ample|tight)"),
            ));
        }
        if budgets[..i].contains(budget) {
            return Err(SpecError::DuplicateName {
                line,
                field: "sweep.budgets".to_string(),
                name: budget.clone(),
            });
        }
    }
    Ok(budgets)
}

fn need_workload_kind(section: &Section, expected: &str) -> Result<(), SpecError> {
    let (kind, line) = need_str(section, "kind")?;
    if kind != expected {
        return Err(invalid(
            line,
            "workload.kind",
            &format!("must be \"{expected}\" for this scenario kind, got \"{kind}\""),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Typed extraction helpers. Each returns the value plus its line.

fn field(section: &str, key: &str) -> String {
    format!("{section}.{key}")
}

fn invalid(line: u32, field: &str, message: &str) -> SpecError {
    SpecError::Invalid {
        line,
        field: field.to_string(),
        message: message.to_string(),
    }
}

fn known_sections(doc: &Document, allowed: &[&str]) -> Result<(), SpecError> {
    for section in &doc.sections {
        if !allowed.contains(&section.name.as_str()) {
            return Err(SpecError::UnknownSection {
                line: section.line,
                section: section.name.clone(),
            });
        }
    }
    Ok(())
}

fn known_keys(section: &Section, allowed: &[&str]) -> Result<(), SpecError> {
    for entry in &section.entries {
        if !allowed.contains(&entry.key.as_str()) {
            return Err(SpecError::UnknownKey {
                line: entry.line,
                section: section.name.clone(),
                key: entry.key.clone(),
            });
        }
    }
    Ok(())
}

fn need_section<'a>(doc: &'a Document, name: &str) -> Result<&'a Section, SpecError> {
    doc.section(name).ok_or_else(|| SpecError::MissingSection {
        section: name.to_string(),
    })
}

fn want_entry<'a>(section: &'a Section, key: &str) -> Option<&'a Entry> {
    section.entry(key)
}

fn need_entry<'a>(section: &'a Section, key: &str) -> Result<&'a Entry, SpecError> {
    section.entry(key).ok_or_else(|| SpecError::MissingKey {
        section: section.name.clone(),
        key: key.to_string(),
    })
}

fn type_error(entry: &Entry, section: &str, expected: &'static str) -> SpecError {
    SpecError::Type {
        line: entry.line,
        field: field(section, &entry.key),
        expected,
        found: entry.value.type_name().to_string(),
    }
}

fn want_str<'a>(section: &'a Section, key: &str) -> Result<Option<(&'a str, u32)>, SpecError> {
    match want_entry(section, key) {
        None => Ok(None),
        Some(entry) => match &entry.value {
            RawValue::Str(s) => Ok(Some((s, entry.line))),
            _ => Err(type_error(entry, &section.name, "a string")),
        },
    }
}

fn need_str<'a>(section: &'a Section, key: &str) -> Result<(&'a str, u32), SpecError> {
    need_entry(section, key)?;
    Ok(want_str(section, key)?.expect("entry exists"))
}

fn want_f64(section: &Section, key: &str) -> Result<Option<(f64, u32)>, SpecError> {
    match want_entry(section, key) {
        None => Ok(None),
        Some(entry) => match entry.value {
            RawValue::Float(v) => Ok(Some((v, entry.line))),
            RawValue::Int(v) => Ok(Some((v as f64, entry.line))),
            _ => Err(type_error(entry, &section.name, "a number")),
        },
    }
}

fn need_f64(section: &Section, key: &str) -> Result<(f64, u32), SpecError> {
    need_entry(section, key)?;
    Ok(want_f64(section, key)?.expect("entry exists"))
}

fn want_bool(section: &Section, key: &str) -> Result<Option<(bool, u32)>, SpecError> {
    match want_entry(section, key) {
        None => Ok(None),
        Some(entry) => match entry.value {
            RawValue::Bool(v) => Ok(Some((v, entry.line))),
            _ => Err(type_error(entry, &section.name, "a boolean")),
        },
    }
}

fn want_u64(section: &Section, key: &str) -> Result<Option<(u64, u32)>, SpecError> {
    match want_entry(section, key) {
        None => Ok(None),
        Some(entry) => match entry.value {
            RawValue::Int(v) if v >= 0 => Ok(Some((v as u64, entry.line))),
            RawValue::Int(v) => Err(SpecError::Type {
                line: entry.line,
                field: field(&section.name, key),
                expected: "a non-negative integer",
                found: v.to_string(),
            }),
            _ => Err(type_error(entry, &section.name, "a non-negative integer")),
        },
    }
}

fn need_u64(section: &Section, key: &str) -> Result<(u64, u32), SpecError> {
    need_entry(section, key)?;
    Ok(want_u64(section, key)?.expect("entry exists"))
}

fn want_u32(section: &Section, key: &str) -> Result<Option<(u32, u32)>, SpecError> {
    match want_u64(section, key)? {
        None => Ok(None),
        Some((v, line)) => {
            let v = u32::try_from(v).map_err(|_| SpecError::Type {
                line,
                field: field(&section.name, key),
                expected: "a 32-bit integer",
                found: v.to_string(),
            })?;
            Ok(Some((v, line)))
        }
    }
}

fn need_u32(section: &Section, key: &str) -> Result<(u32, u32), SpecError> {
    need_entry(section, key)?;
    Ok(want_u32(section, key)?.expect("entry exists"))
}

fn need_f64_list(section: &Section, key: &str) -> Result<(Vec<f64>, u32), SpecError> {
    let entry = need_entry(section, key)?;
    let RawValue::List(items) = &entry.value else {
        return Err(type_error(entry, &section.name, "a list of numbers"));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            RawValue::Float(v) => out.push(*v),
            RawValue::Int(v) => out.push(*v as f64),
            _ => return Err(type_error(entry, &section.name, "a list of numbers")),
        }
    }
    Ok((out, entry.line))
}

fn need_str_list(section: &Section, key: &str) -> Result<(Vec<String>, u32), SpecError> {
    as_str_list(need_entry(section, key)?, &section.name)
}

fn as_str_list(entry: &Entry, section: &str) -> Result<(Vec<String>, u32), SpecError> {
    let RawValue::List(items) = &entry.value else {
        return Err(type_error(entry, section, "a list of strings"));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            RawValue::Str(s) => out.push(s.clone()),
            _ => return Err(type_error(entry, section, "a list of strings")),
        }
    }
    Ok((out, entry.line))
}

fn need_u64_list(section: &Section, key: &str) -> Result<(Vec<u64>, u32), SpecError> {
    let entry = need_entry(section, key)?;
    let RawValue::List(items) = &entry.value else {
        return Err(type_error(
            entry,
            &section.name,
            "a list of non-negative integers",
        ));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            RawValue::Int(v) if *v >= 0 => out.push(*v as u64),
            _ => {
                return Err(type_error(
                    entry,
                    &section.name,
                    "a list of non-negative integers",
                ))
            }
        }
    }
    Ok((out, entry.line))
}

fn need_u32_list(section: &Section, key: &str) -> Result<(Vec<u32>, u32), SpecError> {
    as_u32_list(need_entry(section, key)?, &section.name)
}

fn as_u32_list(entry: &Entry, section: &str) -> Result<(Vec<u32>, u32), SpecError> {
    let RawValue::List(items) = &entry.value else {
        return Err(type_error(
            entry,
            section,
            "a list of non-negative integers",
        ));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            RawValue::Int(v) if *v >= 0 && *v <= i64::from(u32::MAX) => out.push(*v as u32),
            _ => {
                return Err(type_error(
                    entry,
                    section,
                    "a list of non-negative integers",
                ))
            }
        }
    }
    Ok((out, entry.line))
}

/// A `key` / `key_full` pair: the quick value is required, the paper
/// value defaults to it.
fn pair_u32(section: &Section, key: &str) -> Result<(ScalePair<u32>, u32), SpecError> {
    let (quick, line) = need_u32(section, key)?;
    let full = want_u32(section, &format!("{key}_full"))?.map_or(quick, |(v, _)| v);
    Ok((ScalePair { quick, full }, line))
}

fn pair_u64(section: &Section, key: &str) -> Result<(ScalePair<u64>, u32), SpecError> {
    let (quick, line) = need_u64(section, key)?;
    let full = want_u64(section, &format!("{key}_full"))?.map_or(quick, |(v, _)| v);
    Ok((ScalePair { quick, full }, line))
}

fn need_mem_tech(name: &str, line: u32, field: &str) -> Result<accesys_mem::MemTech, SpecError> {
    mem_tech(name).ok_or_else(|| {
        invalid(
            line,
            field,
            &format!("has unknown memory technology \"{name}\" (expected {MEM_TECH_NAMES})"),
        )
    })
}

fn opt_mem_tech(
    name: &str,
    line: u32,
    field: &str,
) -> Result<Option<accesys_mem::MemTech>, SpecError> {
    if name == "none" {
        return Ok(None);
    }
    need_mem_tech(name, line, field).map(Some)
}
