//! The typed, span-carrying error taxonomy of the spec front-end.
//!
//! Every way a scenario file can be wrong is a [`SpecError`] variant
//! carrying the offending **line** and **field** where one exists —
//! never a panic, and never a stringly-typed catch-all. The [`Display`]
//! rendering is stable (pinned by snapshot tests in
//! `tests/diagnostics.rs`): tools may match on it.
//!
//! [`Display`]: std::fmt::Display

/// Why a scenario file failed one of the loader stages
/// (parse → resolve → validate → instantiate).
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The text is not well-formed (tokenizer/grammar stage).
    Parse {
        /// 1-based line of the offending text.
        line: u32,
        /// What was wrong with it.
        message: String,
    },
    /// A section header the schema does not know.
    UnknownSection {
        /// 1-based line of the `[section]` header.
        line: u32,
        /// The unknown section name.
        section: String,
    },
    /// A key the section's schema does not know.
    UnknownKey {
        /// 1-based line of the entry.
        line: u32,
        /// The section the key appeared in.
        section: String,
        /// The unknown key.
        key: String,
    },
    /// A required section is missing.
    MissingSection {
        /// The section the scenario kind requires.
        section: String,
    },
    /// A required key is missing from a section.
    MissingKey {
        /// The section the key belongs in.
        section: String,
        /// The missing key.
        key: String,
    },
    /// A value has the wrong type for its key.
    Type {
        /// 1-based line of the entry.
        line: u32,
        /// `section.key` of the offending entry.
        field: String,
        /// What the schema expects there.
        expected: &'static str,
        /// What the file actually held.
        found: String,
    },
    /// The same key appears twice in one section.
    DuplicateKey {
        /// 1-based line of the *second* occurrence.
        line: u32,
        /// `section.key` of the duplicated entry.
        field: String,
    },
    /// The same section header appears twice.
    DuplicateSection {
        /// 1-based line of the *second* header.
        line: u32,
        /// The duplicated section name.
        section: String,
    },
    /// A named thing (a budget regime, a tenant) is declared twice.
    DuplicateName {
        /// 1-based line of the list holding the repeat.
        line: u32,
        /// `section.key` of the list.
        field: String,
        /// The repeated name.
        name: String,
    },
    /// A reference to a device the topology does not have.
    DanglingDevice {
        /// 1-based line of the referencing entry.
        line: u32,
        /// `section.key` of the reference.
        field: String,
        /// The referenced device, rendered as `dev<i>`.
        reference: String,
        /// Endpoints the (smallest swept) topology actually has.
        endpoints: usize,
    },
    /// A KV budget the serving engine cannot honour.
    KvBudget {
        /// 1-based line of the budget entry.
        line: u32,
        /// `section.key` of the budget.
        field: String,
        /// Why the budget is out of range.
        message: String,
    },
    /// A value that is well-typed but semantically invalid
    /// (bad shape string, zero fan-out, empty axis, …).
    Invalid {
        /// 1-based line of the entry.
        line: u32,
        /// `section.key` of the offending entry.
        field: String,
        /// Why the value is invalid.
        message: String,
    },
    /// The instantiate stage failed: the spec resolved and validated
    /// but the underlying builders rejected it.
    Instantiate {
        /// What the topology/workload/serving builder said.
        message: String,
    },
    /// The spec file could not be read at all.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error.
        message: String,
    },
}

impl SpecError {
    /// The 1-based line the error points at, when it has one.
    pub fn line(&self) -> Option<u32> {
        match self {
            SpecError::Parse { line, .. }
            | SpecError::UnknownSection { line, .. }
            | SpecError::UnknownKey { line, .. }
            | SpecError::Type { line, .. }
            | SpecError::DuplicateKey { line, .. }
            | SpecError::DuplicateSection { line, .. }
            | SpecError::DuplicateName { line, .. }
            | SpecError::DanglingDevice { line, .. }
            | SpecError::KvBudget { line, .. }
            | SpecError::Invalid { line, .. } => Some(*line),
            SpecError::MissingSection { .. }
            | SpecError::MissingKey { .. }
            | SpecError::Instantiate { .. }
            | SpecError::Io { .. } => None,
        }
    }

    /// The `section.key` field the error points at, when it has one.
    pub fn field(&self) -> Option<String> {
        match self {
            SpecError::UnknownKey { section, key, .. } | SpecError::MissingKey { section, key } => {
                Some(format!("{section}.{key}"))
            }
            SpecError::Type { field, .. }
            | SpecError::DuplicateKey { field, .. }
            | SpecError::DuplicateName { field, .. }
            | SpecError::DanglingDevice { field, .. }
            | SpecError::KvBudget { field, .. }
            | SpecError::Invalid { field, .. } => Some(field.clone()),
            _ => None,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SpecError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section `[{section}]`")
            }
            SpecError::UnknownKey { line, section, key } => {
                write!(f, "line {line}: unknown key `{key}` in [{section}]")
            }
            SpecError::MissingSection { section } => {
                write!(f, "missing required section `[{section}]`")
            }
            SpecError::MissingKey { section, key } => {
                write!(f, "missing required key `{key}` in [{section}]")
            }
            SpecError::Type {
                line,
                field,
                expected,
                found,
            } => write!(f, "line {line}: `{field}` expects {expected}, got {found}"),
            SpecError::DuplicateKey { line, field } => {
                write!(f, "line {line}: duplicate key `{field}`")
            }
            SpecError::DuplicateSection { line, section } => {
                write!(f, "line {line}: duplicate section `[{section}]`")
            }
            SpecError::DuplicateName { line, field, name } => {
                write!(f, "line {line}: duplicate name `{name}` in `{field}`")
            }
            SpecError::DanglingDevice {
                line,
                field,
                reference,
                endpoints,
            } => write!(
                f,
                "line {line}: `{field}` references `{reference}`, but the topology has only \
                 {endpoints} endpoint(s)"
            ),
            SpecError::KvBudget {
                line,
                field,
                message,
            } => write!(f, "line {line}: KV budget `{field}` {message}"),
            SpecError::Invalid {
                line,
                field,
                message,
            } => write!(f, "line {line}: `{field}` {message}"),
            SpecError::Instantiate { message } => write!(f, "instantiate failed: {message}"),
            SpecError::Io { path, message } => write!(f, "cannot read `{path}`: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}
