//! # accesys-spec
//!
//! The text spec front-end of the Gem5-AcceSys reproduction: scenario
//! files in a small TOML subset are the single source of truth for
//! every layer's presets — `[topology]` lowers to the switch-tree
//! [`TopologySpec`](accesys::TopologySpec), `[workload]` to the task
//! graphs and request shapes, `[traffic]`/`[policy]`/`[kv]` to the
//! serving layer's arrival specs, policies and KV budgets.
//!
//! Loading is staged, and every stage fails with a typed,
//! span-carrying [`SpecError`] — never a panic:
//!
//! 1. **parse** ([`parse()`]) — text → [`Document`], a line-annotated
//!    section/entry tree with a canonical re-serialization,
//! 2. **resolve** — schema-check every section and key, type every
//!    value,
//! 3. **validate** — the semantic rules (shapes fit the address map,
//!    device references exist, KV budgets hold a request),
//! 4. **instantiate** ([`Spec::dry_build`] and the [`scenario`]
//!    builders) — lower to the simulator's IR types.
//!
//! Stages 2–3 are [`resolve::resolve`]; [`load_str`] / [`load_file`]
//! run 1–3 and hand back a [`Spec`] whose public scenario data drives
//! the `accesys-bench` experiment drivers and the `accesys` CLI.
//!
//! ```
//! use accesys_spec::{load_str, Scenario, SpecError};
//!
//! let spec = load_str(
//!     "[scenario]\nkind = \"roofline\"\nname = \"demo\"\n\
//!      [topology]\nlink_gbps = 8.0\nhost_mem = \"ddr4\"\n\
//!      [workload]\nkind = \"gemm\"\nmatrix = 64\n\
//!      [sweep]\ncompute_ns = [100.0, 500.0]\n",
//! )
//! .unwrap();
//! assert_eq!(spec.scenario.kind(), "roofline");
//!
//! let err = load_str("[scenario]\nknid = \"roofline\"\n").unwrap_err();
//! assert_eq!(err, SpecError::UnknownKey {
//!     line: 2,
//!     section: "scenario".to_string(),
//!     key: "knid".to_string(),
//! });
//! ```
#![warn(missing_docs)]

mod error;
pub mod parse;
pub mod resolve;
pub mod scenario;

pub use error::SpecError;
pub use parse::{parse, Document, RawValue};
pub use scenario::{
    mem_tech, parse_shape, BatchCap, DecodeScenario, EncoderDims, FleetScenario, KvSpec,
    PipelineScenario, PolicyKind, PolicySpec, RooflineScenario, ScalePair, Scenario,
    ServingScenario, Spec, SystemSpec, TopoScenario, TrafficProcess, TrafficSpec, MEM_TECH_NAMES,
};

/// Load a spec from text: parse, resolve and validate (stages 1–3).
///
/// # Errors
///
/// The first failing stage's [`SpecError`].
pub fn load_str(text: &str) -> Result<Spec, SpecError> {
    let doc = parse::parse(text)?;
    let scenario = resolve::resolve(&doc)?;
    Ok(Spec {
        scenario,
        canonical: doc.to_string(),
    })
}

/// Load a spec from a file path.
///
/// # Errors
///
/// [`SpecError::Io`] if the file cannot be read, otherwise as
/// [`load_str`].
pub fn load_file(path: &std::path::Path) -> Result<Spec, SpecError> {
    let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    load_str(&text)
}
