//! Stage 4 of the loader: the typed scenario model and its lowering
//! into the simulator's IRs.
//!
//! A resolved+validated spec is a [`Spec`] holding one [`Scenario`].
//! Every field a driver needs to *measure* the scenario is public and
//! plain data; the methods here lower that data into the existing IR
//! types — [`SystemConfig`] / [`TopologySpec`] / [`Simulation`] for
//! `[topology]`, arrival traces and [`Policy`] values for
//! `[traffic]`/`[policy]`, KV budgets for `[kv]` — so a driver never
//! re-encodes what the text file already said. Builder rejections
//! surface as [`SpecError::Instantiate`]; nothing in this module
//! panics on a validated spec.

use crate::SpecError;
use accesys::topology::{switch_tree, switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig, TopologySpec};
use accesys_exp::Scale;
use accesys_mem::MemTech;
use accesys_serve::{Arrival, ArrivalSpec, LlmRequestShape, Policy, RequestShape};

/// A value with a quick-scale and a paper-scale variant (`key` /
/// `key_full` in the text form).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ScalePair<T> {
    /// The quick (CI) value.
    pub quick: T,
    /// The paper-scale (`--full`) value.
    pub full: T,
}

impl<T: Copy> ScalePair<T> {
    /// Both variants the same.
    pub fn uniform(v: T) -> ScalePair<T> {
        ScalePair { quick: v, full: v }
    }

    /// The variant for `scale`.
    pub fn pick(&self, scale: Scale) -> T {
        match scale {
            Scale::Quick => self.quick,
            Scale::Paper => self.full,
        }
    }
}

/// Parse a `FxF` tree-shape string into per-level fan-outs.
///
/// Returns `None` on anything but `x`-separated positive integers —
/// the validate stage turns that into a typed [`SpecError::Invalid`].
pub fn parse_shape(shape: &str) -> Option<Vec<u32>> {
    let levels: Option<Vec<u32>> = shape.split('x').map(|f| f.parse().ok()).collect();
    let levels = levels?;
    if levels.is_empty() || levels.contains(&0) {
        return None;
    }
    Some(levels)
}

/// Parse a memory-technology name (`"ddr4"`, `"hbm2"`, …).
pub fn mem_tech(name: &str) -> Option<MemTech> {
    Some(match name {
        "ddr3" => MemTech::Ddr3,
        "ddr4" => MemTech::Ddr4,
        "ddr5" => MemTech::Ddr5,
        "hbm2" => MemTech::Hbm2,
        "gddr5" => MemTech::Gddr5,
        "gddr6" => MemTech::Gddr6,
        "lpddr5" => MemTech::Lpddr5,
        _ => return None,
    })
}

/// The names [`mem_tech`] accepts, for diagnostics.
pub const MEM_TECH_NAMES: &str = "ddr3|ddr4|ddr5|hbm2|gddr5|gddr6|lpddr5";

/// The `[topology]` section: one host-plus-tree system description.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemSpec {
    /// Host link bandwidth, GB/s (`link_gbps`).
    pub link_gbps: f64,
    /// Host memory technology (`host_mem`).
    pub host_mem: MemTech,
    /// Fixed per-job compute override, ns (`compute_ns`), if any.
    pub compute_ns: Option<f64>,
    /// Whether the SMMU is in the path (`smmu`, default `true`).
    pub smmu: bool,
    /// Uniform per-leaf device memory (`devmem`), if any.
    pub devmem: Option<MemTech>,
    /// Explicit per-leaf device-memory list (`leaves`): overrides
    /// `devmem` position by position; `None` entries mean no local
    /// memory. Length is validated against every swept shape.
    pub leaves: Option<Vec<Option<MemTech>>>,
    /// Parallel-kernel worker threads (`[kernel] threads`), if the spec
    /// set them; `None` keeps the [`SystemConfig`] default
    /// (`ACCESYS_KERNEL_THREADS`, else 1). Results are byte-identical
    /// at any thread count.
    pub kernel_threads: Option<u32>,
}

impl SystemSpec {
    /// Lower to a [`SystemConfig`] (host side only).
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::pcie_host(self.link_gbps, self.host_mem);
        if let Some(ns) = self.compute_ns {
            cfg = cfg.with_compute_override_ns(ns);
        }
        if !self.smmu {
            cfg.smmu = None;
        }
        if let Some(threads) = self.kernel_threads {
            cfg.kernel_threads = threads;
        }
        cfg
    }

    /// Device memory for leaf `i` under the given uniform/explicit
    /// settings.
    fn leaf_devmem(&self, i: usize) -> Option<MemTech> {
        match &self.leaves {
            Some(list) => list.get(i).copied().flatten(),
            None => self.devmem,
        }
    }

    /// Lower to a switch-tree [`TopologySpec`] with the given per-level
    /// fan-outs.
    pub fn tree(&self, levels: &[u32]) -> Result<TopologySpec, SpecError> {
        let cfg = self.config();
        let spec = if self.devmem.is_none() && self.leaves.is_none() {
            switch_tree(&cfg, levels)
        } else {
            switch_tree_with(&cfg, levels, |i| EndpointOptions {
                accel: None,
                dev_mem: self.leaf_devmem(i).map(MemBackendConfig::Dram),
            })
        };
        spec.map_err(|e| SpecError::Instantiate {
            message: e.to_string(),
        })
    }

    /// Build a ready [`Simulation`] on the given tree shape.
    pub fn simulation(&self, levels: &[u32]) -> Result<Simulation, SpecError> {
        let spec = self.tree(levels)?;
        Simulation::from_topology(self.config(), &spec).map_err(|e| SpecError::Instantiate {
            message: e.to_string(),
        })
    }

    /// Build a single-device host [`Simulation`] (no tree) — the
    /// roofline testbed.
    pub fn host_simulation(&self, compute_ns: f64) -> Result<Simulation, SpecError> {
        let cfg = self.config().with_compute_override_ns(compute_ns);
        Simulation::new(cfg).map_err(|e| SpecError::Instantiate {
            message: e.to_string(),
        })
    }
}

/// Encoder geometry (`seq`/`hidden`/`heads`/`mlp`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EncoderDims {
    /// Sequence length.
    pub seq: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// MLP dimension.
    pub mlp: u32,
}

/// The `[traffic]` section: an open-loop arrival process plus horizon.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSpec {
    /// Trace horizon in virtual ns (`horizon_ns` / `horizon_ns_full`).
    pub horizon_ns: ScalePair<u64>,
    /// The arrival process.
    pub process: TrafficProcess,
}

/// The arrival process of a [`TrafficSpec`].
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficProcess {
    /// Memoryless traffic at the swept rate (`process = "poisson"`).
    Poisson {
        /// Tenants drawn uniformly.
        tenants: u32,
        /// PRNG seed.
        seed: u64,
    },
    /// Two-state MMPP traffic (`process = "bursty"`); the swept rate
    /// axis is ignored — the phases carry their own rates.
    Bursty {
        /// Calm-phase rate, requests per second.
        calm_rps: f64,
        /// Burst-phase rate, requests per second.
        burst_rps: f64,
        /// Mean phase length in arrivals.
        mean_phase_len: u32,
        /// Tenants drawn uniformly.
        tenants: u32,
        /// PRNG seed.
        seed: u64,
    },
    /// Replay an explicit trace (`process = "trace"`, `at_ns` +
    /// `tenant` lists); the swept rate axis is ignored.
    Trace(
        /// The arrivals, sorted by time.
        Vec<Arrival>,
    ),
}

impl TrafficSpec {
    /// Tenants the process draws from (for weighted-share validation).
    pub fn tenants(&self) -> u32 {
        match &self.process {
            TrafficProcess::Poisson { tenants, .. } | TrafficProcess::Bursty { tenants, .. } => {
                *tenants
            }
            TrafficProcess::Trace(arrivals) => {
                arrivals.iter().map(|a| a.tenant + 1).max().unwrap_or(1)
            }
        }
    }

    /// Materialize the arrival trace for one swept rate at one scale.
    /// Deterministic: a pure function of the spec, rate and scale.
    pub fn arrivals(&self, rate_rps: f64, scale: Scale) -> Vec<Arrival> {
        let horizon = self.horizon_ns.pick(scale);
        let spec = match &self.process {
            TrafficProcess::Poisson { tenants, seed } => {
                ArrivalSpec::poisson(rate_rps, *tenants, *seed)
            }
            TrafficProcess::Bursty {
                calm_rps,
                burst_rps,
                mean_phase_len,
                tenants,
                seed,
            } => ArrivalSpec::bursty(*calm_rps, *burst_rps, *mean_phase_len, *tenants, *seed),
            TrafficProcess::Trace(arrivals) => ArrivalSpec::Trace(arrivals.clone()),
        };
        spec.generate(horizon)
    }
}

/// The `[policy]` section: admission + scheduling knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySpec {
    /// The scheduling policy (`kind` + `weights`).
    pub kind: PolicyKind,
    /// Requests in flight for the batched run (`batch_cap`).
    pub batch_cap: BatchCap,
    /// Admission-queue bound (`queue_cap`).
    pub queue_cap: usize,
    /// Latency SLO in ns (`slo_ns`).
    pub slo_ns: f64,
}

/// The scheduling policy of a [`PolicySpec`].
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyKind {
    /// Strict arrival order.
    Fifo,
    /// Rotate across tenants.
    RoundRobin,
    /// Weighted share across tenants.
    WeightedShare(
        /// Per-tenant weights (length = tenant count).
        Vec<u32>,
    ),
}

/// The batched-run batch cap of a [`PolicySpec`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum BatchCap {
    /// `multiplier × endpoints` (the text form `"auto"` is ×2).
    Auto(
        /// The per-endpoint multiplier.
        u32,
    ),
    /// A fixed cap regardless of tree shape.
    Fixed(usize),
}

impl BatchCap {
    /// The concrete cap on a tree with `endpoints` leaves.
    pub fn cap(&self, endpoints: u32) -> usize {
        match self {
            BatchCap::Auto(mult) => (endpoints as usize) * (*mult as usize),
            BatchCap::Fixed(cap) => *cap,
        }
    }
}

impl PolicySpec {
    /// Lower to the serving engine's [`Policy`].
    pub fn policy(&self) -> Policy {
        match &self.kind {
            PolicyKind::Fifo => Policy::Fifo,
            PolicyKind::RoundRobin => Policy::round_robin(),
            PolicyKind::WeightedShare(w) => Policy::weighted_share(w),
        }
    }
}

/// The `[kv]` section: named per-device KV-budget regimes.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KvSpec {
    /// The `ample` regime: a flat byte budget (`ample_bytes`).
    pub ample_bytes: u64,
    /// The `tight` regime: percent of one request's KV working set
    /// (`tight_pct`, e.g. 150 = 1.5 requests' worth).
    pub tight_pct: u32,
}

impl KvSpec {
    /// The budget of a named regime in bytes, `None` if the name is
    /// unknown (validated away at load time).
    pub fn budget_bytes(&self, regime: &str, shape: &LlmRequestShape) -> Option<u64> {
        match regime {
            "ample" => Some(self.ample_bytes),
            "tight" => Some(shape.max_kv_bytes() * u64::from(self.tight_pct) / 100),
            _ => None,
        }
    }
}

/// A roofline scenario (`kind = "roofline"`): one device behind the
/// host link, per-tile compute time swept.
#[derive(Clone, Debug, PartialEq)]
pub struct RooflineScenario {
    /// Experiment name (the sweep id in JSON output).
    pub name: String,
    /// The testbed (compute override comes from the swept axis).
    pub system: SystemSpec,
    /// Square GEMM size per scale.
    pub matrix: ScalePair<u32>,
    /// The swept compute times, ns per tile.
    pub compute_ns: Vec<f64>,
}

/// A topology-scaling scenario (`kind = "topo"`): one GEMM sharded
/// across every leaf of each swept tree shape, in two regimes.
#[derive(Clone, Debug, PartialEq)]
pub struct TopoScenario {
    /// Experiment name.
    pub name: String,
    /// The compute-bound regime's testbed.
    pub compute_bound: SystemSpec,
    /// The transfer-bound regime's testbed.
    pub transfer_bound: SystemSpec,
    /// Square GEMM size per scale.
    pub matrix: ScalePair<u32>,
    /// The swept tree shapes.
    pub shapes: Vec<String>,
}

/// A pipelined-encoder scenario (`kind = "pipeline"`): sequential
/// chain vs pipelined schedule on each swept tree shape.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineScenario {
    /// Experiment name.
    pub name: String,
    /// The testbed.
    pub system: SystemSpec,
    /// Encoder geometry per scale.
    pub dims: ScalePair<EncoderDims>,
    /// Encoder layers per scale.
    pub layers: ScalePair<u32>,
    /// Images in flight per scale.
    pub images: ScalePair<u32>,
    /// Explicit pipeline devices (`workload.devices`), if any;
    /// `None` pins stages across every leaf.
    pub devices: Option<Vec<usize>>,
    /// The swept tree shapes.
    pub shapes: Vec<String>,
}

impl PipelineScenario {
    /// Pipeline stage count on a tree with `endpoints` leaves.
    pub fn device_count(&self, endpoints: u32) -> usize {
        match &self.devices {
            Some(list) => list.len(),
            None => endpoints as usize,
        }
    }
}

/// An online-serving scenario (`kind = "serving"`): open-loop encoder
/// requests through the continuous-batching engine.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingScenario {
    /// Experiment name.
    pub name: String,
    /// The testbed.
    pub system: SystemSpec,
    /// The request every client sends.
    pub request: RequestShape,
    /// The arrival process.
    pub traffic: TrafficSpec,
    /// Admission + scheduling knobs.
    pub policy: PolicySpec,
    /// The swept tree shapes.
    pub shapes: Vec<String>,
    /// The swept arrival rates, requests per second.
    pub rates: Vec<f64>,
}

/// A batched-decode scenario (`kind = "decode"`): open-loop LLM
/// prefill/decode traffic under named KV budgets.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodeScenario {
    /// Experiment name.
    pub name: String,
    /// The testbed.
    pub system: SystemSpec,
    /// The request every client sends.
    pub request: LlmRequestShape,
    /// The arrival process.
    pub traffic: TrafficSpec,
    /// Admission + scheduling knobs.
    pub policy: PolicySpec,
    /// The KV-budget regimes.
    pub kv: KvSpec,
    /// The swept tree shapes.
    pub shapes: Vec<String>,
    /// The swept arrival rates, requests per second.
    pub rates: Vec<f64>,
    /// The swept budget-regime names (`"ample"` / `"tight"`).
    pub budgets: Vec<String>,
}

/// A fleet scale-out scenario (`kind = "fleet"`): many identical hosts
/// — each one switch tree of accelerators behind its own serving
/// engine — fed shares of one open-loop trace over latency/bandwidth
/// bounded network links, swept over host counts and per-host tree
/// shapes.
///
/// The spec layer stays a pure front-end here: this struct is plain
/// data, and the fleet driver lowers it into the multi-process fleet
/// crate's own spec type.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetScenario {
    /// Experiment name.
    pub name: String,
    /// The per-host testbed (all hosts identical).
    pub system: SystemSpec,
    /// The request every client sends.
    pub request: RequestShape,
    /// The fleet-wide arrival process (restricted to `poisson`: the
    /// whole trace must be a precomputable pure function of the spec so
    /// every shard can regenerate it independently).
    pub traffic: TrafficSpec,
    /// Per-host admission + scheduling knobs.
    pub policy: PolicySpec,
    /// The swept host counts (`[fleet] hosts`).
    pub hosts: Vec<u32>,
    /// Default worker OS processes (`[fleet] workers`; 0 = in-process,
    /// overridable by `--fleet-workers` / `ACCESYS_FLEET_WORKERS`).
    pub workers: u32,
    /// Frontend→host one-way link latency, ns (`link_latency_ns`) —
    /// also the conservative lookahead of the cross-host cut.
    pub link_latency_ns: f64,
    /// Inter-host link bandwidth, Gbit/s (`link_gbps`).
    pub link_gbps: f64,
    /// Bytes on the wire per request/response (`request_bytes`).
    pub request_bytes: u64,
    /// Fleet-wide offered rate, requests per second (`rate_rps`).
    pub rate_rps: f64,
    /// The swept per-host tree shapes.
    pub shapes: Vec<String>,
}

impl FleetScenario {
    /// Total accelerator endpoints at one (hosts, shape) grid point.
    pub fn endpoints(&self, hosts: u32, shape: &str) -> u64 {
        let per_host: u32 = parse_shape(shape).map_or(0, |l| l.iter().product());
        u64::from(hosts) * u64::from(per_host)
    }
}

/// One fully loaded scenario, by kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Scenario {
    /// `kind = "roofline"`.
    Roofline(RooflineScenario),
    /// `kind = "topo"`.
    Topo(TopoScenario),
    /// `kind = "pipeline"`.
    Pipeline(PipelineScenario),
    /// `kind = "serving"`.
    Serving(ServingScenario),
    /// `kind = "decode"`.
    Decode(DecodeScenario),
    /// `kind = "fleet"`.
    Fleet(FleetScenario),
}

impl Scenario {
    /// The scenario kind, as spelled in `[scenario] kind`.
    pub fn kind(&self) -> &'static str {
        match self {
            Scenario::Roofline(_) => "roofline",
            Scenario::Topo(_) => "topo",
            Scenario::Pipeline(_) => "pipeline",
            Scenario::Serving(_) => "serving",
            Scenario::Decode(_) => "decode",
            Scenario::Fleet(_) => "fleet",
        }
    }

    /// The experiment name (`[scenario] name`).
    pub fn name(&self) -> &str {
        match self {
            Scenario::Roofline(s) => &s.name,
            Scenario::Topo(s) => &s.name,
            Scenario::Pipeline(s) => &s.name,
            Scenario::Serving(s) => &s.name,
            Scenario::Decode(s) => &s.name,
            Scenario::Fleet(s) => &s.name,
        }
    }

    /// The swept tree shapes (empty for roofline scenarios).
    pub fn shapes(&self) -> &[String] {
        match self {
            Scenario::Roofline(_) => &[],
            Scenario::Topo(s) => &s.shapes,
            Scenario::Pipeline(s) => &s.shapes,
            Scenario::Serving(s) => &s.shapes,
            Scenario::Decode(s) => &s.shapes,
            Scenario::Fleet(s) => &s.shapes,
        }
    }

    /// Override the parallel-kernel thread count on every system this
    /// scenario builds (the `--kernel-threads` CLI flag; wins over the
    /// spec's own `[kernel] threads`). Results stay byte-identical.
    pub fn set_kernel_threads(&mut self, threads: u32) {
        match self {
            Scenario::Roofline(s) => s.system.kernel_threads = Some(threads),
            Scenario::Topo(s) => {
                s.compute_bound.kernel_threads = Some(threads);
                s.transfer_bound.kernel_threads = Some(threads);
            }
            Scenario::Pipeline(s) => s.system.kernel_threads = Some(threads),
            Scenario::Serving(s) => s.system.kernel_threads = Some(threads),
            Scenario::Decode(s) => s.system.kernel_threads = Some(threads),
            Scenario::Fleet(s) => s.system.kernel_threads = Some(threads),
        }
    }
}

/// A loaded spec: the scenario plus the canonical text it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Spec {
    /// The scenario.
    pub scenario: Scenario,
    /// The canonical re-serialization of the source document
    /// (normalized whitespace/number forms; a round-trip fixed point).
    pub canonical: String,
}

impl Spec {
    /// Instantiate every IR object the scenario needs — topologies on
    /// every swept shape, the simulations on them — without running
    /// anything. This is the `accesys validate` backstop: builder
    /// rejections the earlier stages could not see surface here as
    /// typed [`SpecError::Instantiate`] values.
    pub fn dry_build(&self, scale: Scale) -> Result<(), SpecError> {
        match &self.scenario {
            Scenario::Roofline(s) => {
                let &first = s.compute_ns.first().ok_or_else(|| SpecError::Instantiate {
                    message: "empty compute_ns axis".to_string(),
                })?;
                s.system.host_simulation(first).map(|_| ())
            }
            Scenario::Topo(s) => {
                for shape in &s.shapes {
                    let levels = parsed_shape(shape)?;
                    s.compute_bound.simulation(&levels)?;
                    s.transfer_bound.simulation(&levels)?;
                }
                Ok(())
            }
            Scenario::Pipeline(s) => {
                for shape in &s.shapes {
                    s.system.simulation(&parsed_shape(shape)?)?;
                }
                Ok(())
            }
            Scenario::Serving(s) => {
                for shape in &s.shapes {
                    s.system.simulation(&parsed_shape(shape)?)?;
                }
                let rate = s.rates.first().copied().unwrap_or(0.0);
                let _ = s.traffic.arrivals(rate, scale);
                Ok(())
            }
            Scenario::Decode(s) => {
                for shape in &s.shapes {
                    s.system.simulation(&parsed_shape(shape)?)?;
                }
                let rate = s.rates.first().copied().unwrap_or(0.0);
                let _ = s.traffic.arrivals(rate, scale);
                for b in &s.budgets {
                    s.kv.budget_bytes(b, &s.request)
                        .ok_or_else(|| SpecError::Instantiate {
                            message: format!("unknown KV budget regime `{b}`"),
                        })?;
                }
                Ok(())
            }
            Scenario::Fleet(s) => {
                // Every host is identical, so one per-shape simulation
                // exercises the same builders every shard will run.
                for shape in &s.shapes {
                    s.system.simulation(&parsed_shape(shape)?)?;
                }
                let _ = s.traffic.arrivals(s.rate_rps, scale);
                Ok(())
            }
        }
    }
}

/// Parse an already-validated shape string, mapping the (unreachable
/// on validated specs) failure to a typed error instead of a panic.
fn parsed_shape(shape: &str) -> Result<Vec<u32>, SpecError> {
    parse_shape(shape).ok_or_else(|| SpecError::Instantiate {
        message: format!("malformed tree shape `{shape}`"),
    })
}
